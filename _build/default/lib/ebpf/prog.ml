(* eBPF program types and their context-object layouts.

   Each program type runs with R1 pointing to a type-specific context
   structure; the verifier validates every context access against the
   layout (offset alignment, width, writability), and fields of kind
   [Fk_pkt_data]/[Fk_pkt_end] load packet pointers rather than scalars,
   feeding the verifier's packet-range analysis. *)

type field_kind =
  | Fk_scalar
  | Fk_pkt_data (* loads PTR_TO_PACKET *)
  | Fk_pkt_end  (* loads PTR_TO_PACKET_END *)

type field = {
  fname : string;
  foff : int;
  fsize : int;
  fwritable : bool;
  fkind : field_kind;
}

type ctx_layout = { ctx_size : int; fields : field list }

type prog_type =
  | Socket_filter
  | Kprobe
  | Tracepoint
  | Raw_tracepoint
  | Xdp
  | Perf_event
  | Cgroup_skb

let all_prog_types =
  [ Socket_filter; Kprobe; Tracepoint; Raw_tracepoint; Xdp; Perf_event;
    Cgroup_skb ]

let prog_type_to_string = function
  | Socket_filter -> "socket_filter"
  | Kprobe -> "kprobe"
  | Tracepoint -> "tracepoint"
  | Raw_tracepoint -> "raw_tracepoint"
  | Xdp -> "xdp"
  | Perf_event -> "perf_event"
  | Cgroup_skb -> "cgroup_skb"

let prog_type_of_string = function
  | "socket_filter" -> Some Socket_filter
  | "kprobe" -> Some Kprobe
  | "tracepoint" -> Some Tracepoint
  | "raw_tracepoint" -> Some Raw_tracepoint
  | "xdp" -> Some Xdp
  | "perf_event" -> Some Perf_event
  | "cgroup_skb" -> Some Cgroup_skb
  | _ -> None

let pp_prog_type fmt t = Format.pp_print_string fmt (prog_type_to_string t)

let scalar ?(writable = false) fname foff fsize =
  { fname; foff; fsize; fwritable = writable; fkind = Fk_scalar }

(* A simplified __sk_buff: the fields the generator and tests exercise. *)
let sk_buff_layout =
  {
    ctx_size = 192;
    fields =
      [
        scalar "len" 0 4;
        scalar "pkt_type" 4 4;
        scalar ~writable:true "mark" 8 4;
        scalar "queue_mapping" 12 4;
        scalar "protocol" 16 4;
        scalar "vlan_present" 20 4;
        scalar ~writable:true "priority" 32 4;
        scalar "ingress_ifindex" 36 4;
        scalar ~writable:true "cb0" 48 4;
        scalar ~writable:true "cb1" 52 4;
        scalar ~writable:true "cb2" 56 4;
        scalar ~writable:true "cb3" 60 4;
        scalar ~writable:true "cb4" 64 4;
        scalar "hash" 68 4;
        { fname = "data"; foff = 76; fsize = 4; fwritable = false;
          fkind = Fk_pkt_data };
        { fname = "data_end"; foff = 80; fsize = 4; fwritable = false;
          fkind = Fk_pkt_end };
      ];
  }

let xdp_layout =
  {
    ctx_size = 24;
    fields =
      [
        { fname = "data"; foff = 0; fsize = 4; fwritable = false;
          fkind = Fk_pkt_data };
        { fname = "data_end"; foff = 4; fsize = 4; fwritable = false;
          fkind = Fk_pkt_end };
        scalar "data_meta" 8 4;
        scalar "ingress_ifindex" 12 4;
        scalar "rx_queue_index" 16 4;
        scalar "egress_ifindex" 20 4;
      ];
  }

(* pt_regs for kprobe: 21 readable 8-byte registers. *)
let kprobe_layout =
  {
    ctx_size = 168;
    fields =
      List.init 21 (fun i -> scalar (Printf.sprintf "reg%d" i) (i * 8) 8);
  }

let tracepoint_layout =
  { ctx_size = 64;
    fields = List.init 8 (fun i -> scalar (Printf.sprintf "arg%d" i) (i * 8) 8)
  }

let raw_tracepoint_layout =
  { ctx_size = 48;
    fields = List.init 6 (fun i -> scalar (Printf.sprintf "arg%d" i) (i * 8) 8)
  }

let perf_event_layout =
  {
    ctx_size = 32;
    fields =
      [ scalar "sample_period" 0 8; scalar "addr" 8 8;
        scalar "regs" 16 8; scalar "pad" 24 8 ];
  }

let ctx_layout = function
  | Socket_filter | Cgroup_skb -> sk_buff_layout
  | Kprobe -> kprobe_layout
  | Tracepoint -> tracepoint_layout
  | Raw_tracepoint -> raw_tracepoint_layout
  | Xdp -> xdp_layout
  | Perf_event -> perf_event_layout

let field_at (layout : ctx_layout) ~(off : int) ~(size : int) :
  field option =
  List.find_opt
    (fun f -> f.foff = off && f.fsize = size)
    layout.fields

(* Return-value constraint checked at EXIT: allowed [min,max] for R0,
   or None when the program type does not constrain the return value. *)
let return_range = function
  | Socket_filter | Cgroup_skb -> Some (0L, 1L)
  | Xdp -> Some (0L, 4L) (* XDP_ABORTED..XDP_REDIRECT *)
  | Kprobe | Tracepoint | Raw_tracepoint | Perf_event -> None

(* Program types whose context supports direct packet access. *)
let has_packet_access = function
  | Socket_filter | Cgroup_skb | Xdp -> true
  | Kprobe | Tracepoint | Raw_tracepoint | Perf_event -> false

(* Tracing-style program types may be attached to arbitrary kernel events
   (tracepoints / kprobes), which is where the paper's indicator#2
   recursion bugs live. *)
let is_tracing = function
  | Kprobe | Tracepoint | Raw_tracepoint | Perf_event -> true
  | Socket_filter | Cgroup_skb | Xdp -> false

(* The fixed per-frame stack size, as in Linux. *)
let stack_size = 512

(* Maximum number of instructions the loader accepts (scaled-down
   BPF_MAXINSNS for the simulation). *)
let max_insns = 4096
