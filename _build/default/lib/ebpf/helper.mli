(** Catalogue of helper functions and kfuncs: the declarative prototypes
    the verifier checks call sites against, and the attributes the
    simulated kernel interprets when executing them.

    Ids follow the real uapi numbering where a counterpart exists.  The
    sanitizing functions introduced by the paper's kernel patches
    ([bpf_asan_load*] / [bpf_asan_store*] / probes / the alu_limit
    check) are {e internal}: only rewrite passes may emit calls to
    them. *)

(** Argument constraints, a compact model of the kernel's ARG_* enum. *)
type arg =
  | Anything            (** any initialized value *)
  | Const_map_ptr
  | Map_key             (** pointer to [key_size] initialized bytes *)
  | Map_value           (** pointer to [value_size] initialized bytes *)
  | Mem_rd              (** initialized memory; size in the next [Size] *)
  | Mem_wr              (** writable memory; size in the next [Size] *)
  | Size of { max : int; allow_zero : bool }
  | Ctx
  | Btf_task            (** trusted pointer to a task_struct *)
  | Spin_lock           (** pointer to a bpf_spin_lock in a map value *)
  | Scalar_const        (** scalar the verifier must know exactly *)

(** Return-value kinds (RET_* analogue). *)
type ret =
  | R_integer
  | R_void
  | R_map_value_or_null
  | R_btf_task_or_null
  | R_ringbuf_mem_or_null

(** Behavioural attributes deciding which indicator-#2 capture mechanism
    a buggy invocation trips. *)
type attr =
  | Acquires_lock of string
  | Fires_tracepoint of string
  | Sends_signal
  | Queues_irq_work
  | Writes_mem
  | Allocates
  | Releases

type t = {
  id : int;
  name : string;
  args : arg list;
  ret : ret;
  prog_types : Prog.prog_type list option; (** [None] = any *)
  since : Version.t;
  attrs : attr list;
  internal : bool;
}

(** {2 Public helpers} *)

val map_lookup_elem : t
val map_update_elem : t
val map_delete_elem : t
val probe_read : t
val ktime_get_ns : t
val trace_printk : t
val get_prandom_u32 : t
val get_smp_processor_id : t
val get_current_pid_tgid : t
val get_current_uid_gid : t
val get_current_comm : t
val skb_load_bytes : t
val get_current_task : t
val get_stackid : t
val spin_lock : t
val spin_unlock : t
val send_signal : t
val probe_read_kernel : t
val ringbuf_output : t
val ringbuf_reserve : t
val ringbuf_submit : t
val ringbuf_discard : t
val get_current_task_btf : t
val task_pt_regs : t
val snprintf : t
val loop : t
val ktime_get_boot_ns : t
val jiffies64 : t

(** {2 Internal sanitizing functions (the paper's kernel patches)} *)

val asan_base : int
(** Id space reserved for internal helpers. *)

val asan_load8 : t
val asan_load16 : t
val asan_load32 : t
val asan_load64 : t
val asan_store8 : t
val asan_store16 : t
val asan_store32 : t
val asan_store64 : t

val asan_probe8 : t
val asan_probe16 : t
val asan_probe32 : t
val asan_probe64 : t
(** Tolerant variants for exception-tabled (BTF) loads: poisoned memory
    is reported, plain faults are not. *)

val asan_check_alu : t
(** Reports an alu_limit violation; reached only when the inline
    comparison emitted by the sanitizer failed. *)

val internal_helpers : t list
val public_helpers : t list
val all : t list

val find : int -> t option
val find_exn : int -> t

val available : version:Version.t -> pt:Prog.prog_type -> t list
(** Public helpers a program of type [pt] may call under [version]. *)

(** {2 Kfuncs} *)

type kfunc = {
  kid : int;
  kname : string;
  kargs : arg list;
  kret : ret;
  ksince : Version.t;
  kacquire : bool; (** returns a reference that must be released *)
  krelease : bool;
}

val kfunc_task_from_pid : kfunc
val kfunc_task_release : kfunc
val kfunc_obj_id : kfunc
val kfuncs : kfunc list
val find_kfunc : int -> kfunc option
val kfuncs_available : version:Version.t -> kfunc list
