(** Binary (wire) encoding of eBPF programs, byte-compatible with the
    kernel's [struct bpf_insn] layout:

    {v opcode:8 | dst:4 src:4 | off:16 LE | imm:32 LE v}

    LD_IMM64 occupies two slots.  Since {!Insn.t} programs are
    element-based, [encode] and [decode] translate every branch offset
    between element units and slot units. *)

val encode : Insn.t array -> Bytes.t
(** Lower a structured program to its wire format.
    @raise Invalid_argument if a branch escapes the program. *)

(** Decode failure: the offending slot index and a reason. *)
type error = { pos : int; reason : string }

val decode : Bytes.t -> (Insn.t array, error) result
(** Parse a wire-format program.  Rejects unknown opcodes, invalid
    registers, truncated or malformed LD_IMM64 pairs, and branches into
    the middle of an LD_IMM64. *)

(** {2 Raw slot encoding}

    Exposed for tests and for byte-level fuzzers (Buzzer's random
    mode). *)

type raw = { op : int; dst : int; src : int; off : int; imm : int32 }

val raw_to_bytes : Bytes.t -> int -> raw -> unit
val raw_of_bytes : Bytes.t -> int -> raw

val pseudo_map_fd : int
val pseudo_map_value : int
val pseudo_btf_id : int
val pseudo_call_local : int
val pseudo_call_kfunc : int
