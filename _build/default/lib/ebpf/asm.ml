(* Assembler-style construction helpers mirroring the kernel's BPF_*
   macros (include/linux/filter.h), so hand-written test programs read
   close to the listings in the paper. *)

open Insn

let mov64_imm dst imm = Alu { op64 = true; op = Mov; dst; src = Imm imm }
let mov64_reg dst src = Alu { op64 = true; op = Mov; dst; src = Reg src }
let mov32_imm dst imm = Alu { op64 = false; op = Mov; dst; src = Imm imm }
let mov32_reg dst src = Alu { op64 = false; op = Mov; dst; src = Reg src }

let alu64_imm op dst imm = Alu { op64 = true; op; dst; src = Imm imm }
let alu64_reg op dst src = Alu { op64 = true; op; dst; src = Reg src }
let alu32_imm op dst imm = Alu { op64 = false; op; dst; src = Imm imm }
let alu32_reg op dst src = Alu { op64 = false; op; dst; src = Reg src }

let neg64 dst = Alu { op64 = true; op = Neg; dst; src = Imm 0l }

let ld_imm64 dst v = Ld_imm64 (dst, Const v)
let ld_map_fd dst fd = Ld_imm64 (dst, Map_fd fd)
let ld_map_value dst fd off = Ld_imm64 (dst, Map_value (fd, off))
let ld_btf_obj dst id = Ld_imm64 (dst, Btf_obj id)

let ldx sz dst src off = Ldx { sz; dst; src; off }
let ldx_b dst src off = ldx B dst src off
let ldx_h dst src off = ldx H dst src off
let ldx_w dst src off = ldx W dst src off
let ldx_dw dst src off = ldx DW dst src off

let st sz dst off imm = St { sz; dst; off; imm }
let st_b dst off imm = st B dst off imm
let st_h dst off imm = st H dst off imm
let st_w dst off imm = st W dst off imm
let st_dw dst off imm = st DW dst off imm

let stx sz dst src off = Stx { sz; dst; src; off }
let stx_b dst src off = stx B dst src off
let stx_h dst src off = stx H dst src off
let stx_w dst src off = stx W dst src off
let stx_dw dst src off = stx DW dst src off

let atomic ?(fetch = false) sz op dst src off =
  Atomic { sz; op; fetch; dst; src; off }

let jmp_imm cond dst imm off = Jmp { op32 = false; cond; dst; src = Imm imm; off }
let jmp_reg cond dst src off = Jmp { op32 = false; cond; dst; src = Reg src; off }
let jmp32_imm cond dst imm off = Jmp { op32 = true; cond; dst; src = Imm imm; off }
let jmp32_reg cond dst src off = Jmp { op32 = true; cond; dst; src = Reg src; off }

let ja off = Ja off
let call id = Call (Helper id)
let call_kfunc id = Call (Kfunc id)
let call_local off = Call (Local off)
let exit_ = Exit

(* Common idiom: return [imm] and exit. *)
let ret imm = [ mov64_imm R0 imm; exit_ ]

let prog (fragments : Insn.t list list) : Insn.t array =
  Array.of_list (List.concat fragments)
