(** 64/32-bit machine-word arithmetic shared by the verifier's abstract
    domain and the concrete interpreter.

    eBPF semantics reminders: ALU32 operations compute on the low 32 bits
    and zero-extend into the destination; division by zero yields 0 and
    modulo by zero keeps the dividend; shift amounts are masked to the
    operand width. *)

val mask32 : int64
(** [0xFFFF_FFFF]. *)

val to_u32 : int64 -> int64
(** Zero-extended low 32 bits. *)

val sext : int -> int64 -> int64
(** [sext bits x] sign-extends the low [bits] bits of [x]. *)

val sext8 : int64 -> int64
val sext16 : int64 -> int64
val sext32 : int64 -> int64

val zext : int -> int64 -> int64
(** [zext bits x] zero-extends the low [bits] bits of [x]. *)

val zext8 : int64 -> int64
val zext16 : int64 -> int64

val ucmp : int64 -> int64 -> int
(** Unsigned comparison of the 64-bit patterns. *)

val ult : int64 -> int64 -> bool
val ule : int64 -> int64 -> bool
val ugt : int64 -> int64 -> bool
val uge : int64 -> int64 -> bool

val umin : int64 -> int64 -> int64
val umax : int64 -> int64 -> int64
val smin : int64 -> int64 -> int64
val smax : int64 -> int64 -> int64

val udiv : int64 -> int64 -> int64
(** eBPF unsigned division: [udiv x 0 = 0]. *)

val umod : int64 -> int64 -> int64
(** eBPF unsigned modulo: [umod x 0 = x]. *)

val sdiv : int64 -> int64 -> int64
(** Signed division with eBPF edge cases ([min_int / -1 = min_int]). *)

val smod : int64 -> int64 -> int64

val shl64 : int64 -> int64 -> int64
(** Left shift; the amount is masked to 6 bits. *)

val shr64 : int64 -> int64 -> int64
val ashr64 : int64 -> int64 -> int64

val shl32 : int64 -> int64 -> int64
(** 32-bit left shift of the low word, zero-extended; amount masked to 5
    bits. *)

val shr32 : int64 -> int64 -> int64
val ashr32 : int64 -> int64 -> int64

val bswap16 : int64 -> int64
val bswap32 : int64 -> int64
val bswap64 : int64 -> int64

val get_le : Bytes.t -> int -> int -> int64
(** [get_le buf off size] reads a little-endian [size]-byte value. *)

val set_le : Bytes.t -> int -> int -> int64 -> unit
(** [set_le buf off size v] writes a little-endian [size]-byte value. *)
