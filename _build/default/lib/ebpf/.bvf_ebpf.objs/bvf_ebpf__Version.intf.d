lib/ebpf/version.mli: Format
