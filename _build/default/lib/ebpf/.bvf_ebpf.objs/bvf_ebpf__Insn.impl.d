lib/ebpf/insn.ml: Array Format Option
