lib/ebpf/word.mli: Bytes
