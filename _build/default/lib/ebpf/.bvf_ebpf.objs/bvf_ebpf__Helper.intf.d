lib/ebpf/helper.mli: Prog Version
