lib/ebpf/version.ml: Format Int
