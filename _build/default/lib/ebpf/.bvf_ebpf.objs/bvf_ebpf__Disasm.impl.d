lib/ebpf/disasm.ml: Array Format Helper Insn Printf
