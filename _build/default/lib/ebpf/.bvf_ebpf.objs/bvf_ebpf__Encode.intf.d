lib/ebpf/encode.mli: Bytes Insn
