lib/ebpf/disasm.mli: Format Insn
