lib/ebpf/asm.mli: Insn
