lib/ebpf/prog.mli: Format
