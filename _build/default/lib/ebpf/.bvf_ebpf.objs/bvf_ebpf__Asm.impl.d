lib/ebpf/asm.ml: Array Insn List
