lib/ebpf/prog.ml: Format List Printf
