lib/ebpf/helper.ml: Hashtbl List Printf Prog Version
