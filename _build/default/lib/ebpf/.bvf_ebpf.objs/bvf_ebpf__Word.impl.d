lib/ebpf/word.ml: Bytes Char Int64 List
