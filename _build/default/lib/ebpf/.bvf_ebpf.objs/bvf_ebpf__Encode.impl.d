lib/ebpf/encode.ml: Array Bytes Char Format Insn Int32 Int64 List Printf Word
