(** Kernel versions the reproduction simulates.  The paper evaluates
    Linux v5.15, v6.1 and the bpf-next development branch; verifier
    features, helpers, tracepoints and the injected historical bugs are
    all gated on this type. *)

type t = V5_15 | V6_1 | Bpf_next

val all : t list
(** In release order. *)

val to_string : t -> string
val of_string : string -> t option

val rank : t -> int
(** Total order on release recency: [v5.15 < v6.1 < bpf-next]. *)

val compare : t -> t -> int

val at_least : t -> t -> bool
(** [at_least v minimum] is true when [v] is at least as recent as
    [minimum]. *)

val pp : Format.formatter -> t -> unit
