(* Binary (wire) encoding of eBPF programs, byte-compatible with the
   kernel's struct bpf_insn layout:

     opcode:8 | dst_reg:4 src_reg:4 | off:16 (LE, signed) | imm:32 (LE, signed)

   LD_IMM64 occupies two 8-byte slots; since the structured representation
   ({!Insn.t}) is element-based, encoding and decoding translate branch
   offsets between element units and slot units. *)

open Insn

(* Instruction classes *)
let cls_ld = 0x00
let cls_ldx = 0x01
let cls_st = 0x02
let cls_stx = 0x03
let cls_alu = 0x04
let cls_jmp = 0x05
let cls_jmp32 = 0x06
let cls_alu64 = 0x07

(* ALU/JMP source flag *)
let src_k = 0x00
let src_x = 0x08

let alu_op_code = function
  | Add -> 0x0 | Sub -> 0x1 | Mul -> 0x2 | Div -> 0x3 | Or -> 0x4
  | And -> 0x5 | Lsh -> 0x6 | Rsh -> 0x7 | Neg -> 0x8 | Mod -> 0x9
  | Xor -> 0xa | Mov -> 0xb | Arsh -> 0xc

let alu_op_of_code = function
  | 0x0 -> Some Add | 0x1 -> Some Sub | 0x2 -> Some Mul | 0x3 -> Some Div
  | 0x4 -> Some Or | 0x5 -> Some And | 0x6 -> Some Lsh | 0x7 -> Some Rsh
  | 0x8 -> Some Neg | 0x9 -> Some Mod | 0xa -> Some Xor | 0xb -> Some Mov
  | 0xc -> Some Arsh | _ -> None

let op_end = 0xd

let jmp_code = function
  | Jeq -> 0x1 | Jgt -> 0x2 | Jge -> 0x3 | Jset -> 0x4 | Jne -> 0x5
  | Jsgt -> 0x6 | Jsge -> 0x7 | Jlt -> 0xa | Jle -> 0xb | Jslt -> 0xc
  | Jsle -> 0xd

let jmp_cond_of_code = function
  | 0x1 -> Some Jeq | 0x2 -> Some Jgt | 0x3 -> Some Jge | 0x4 -> Some Jset
  | 0x5 -> Some Jne | 0x6 -> Some Jsgt | 0x7 -> Some Jsge | 0xa -> Some Jlt
  | 0xb -> Some Jle | 0xc -> Some Jslt | 0xd -> Some Jsle | _ -> None

let op_ja = 0x0
let op_call = 0x8
let op_exit = 0x9

let size_code = function W -> 0x00 | H -> 0x08 | B -> 0x10 | DW -> 0x18

let size_of_code = function
  | 0x00 -> Some W | 0x08 -> Some H | 0x10 -> Some B | 0x18 -> Some DW
  | _ -> None

let mode_imm = 0x00
let mode_mem = 0x60
let mode_atomic = 0xc0

(* Atomic imm encodings (matches BPF_FETCH etc.) *)
let atomic_code op fetch =
  match op, fetch with
  | A_add, f -> 0x00 lor (if f then 0x01 else 0)
  | A_or, f -> 0x40 lor (if f then 0x01 else 0)
  | A_and, f -> 0x50 lor (if f then 0x01 else 0)
  | A_xor, f -> 0xa0 lor (if f then 0x01 else 0)
  | A_xchg, _ -> 0xe1
  | A_cmpxchg, _ -> 0xf1

let atomic_of_code = function
  | 0x00 -> Some (A_add, false) | 0x01 -> Some (A_add, true)
  | 0x40 -> Some (A_or, false) | 0x41 -> Some (A_or, true)
  | 0x50 -> Some (A_and, false) | 0x51 -> Some (A_and, true)
  | 0xa0 -> Some (A_xor, false) | 0xa1 -> Some (A_xor, true)
  | 0xe1 -> Some (A_xchg, true) | 0xf1 -> Some (A_cmpxchg, true)
  | _ -> None

(* Pseudo src_reg values on LD_IMM64 / CALL *)
let pseudo_map_fd = 1
let pseudo_map_value = 2
let pseudo_btf_id = 3
let pseudo_call_local = 1
let pseudo_call_kfunc = 2

type raw = { op : int; dst : int; src : int; off : int; imm : int32 }

let raw_to_bytes (b : Bytes.t) (pos : int) (r : raw) : unit =
  Bytes.set b pos (Char.chr (r.op land 0xff));
  Bytes.set b (pos + 1) (Char.chr ((r.dst land 0xf) lor ((r.src land 0xf) lsl 4)));
  Word.set_le b (pos + 2) 2 (Int64.of_int (r.off land 0xffff));
  Word.set_le b (pos + 4) 4 (Int64.of_int32 r.imm)

let raw_of_bytes (b : Bytes.t) (pos : int) : raw =
  let op = Char.code (Bytes.get b pos) in
  let regs = Char.code (Bytes.get b (pos + 1)) in
  let off = Int64.to_int (Word.sext16 (Word.get_le b (pos + 2) 2)) in
  let imm = Int64.to_int32 (Word.get_le b (pos + 4) 4) in
  { op; dst = regs land 0xf; src = (regs lsr 4) land 0xf; off; imm }

(* Lower one structured instruction to one or two raw slots.
   Branch offsets are translated by the caller; here [off]/[imm] fields
   are taken as already slot-based. *)
let lower (i : t) ~(off : int) ~(local_imm : int32) : raw list =
  let reg = reg_to_int in
  match i with
  | Alu { op64; op = Neg; dst; _ } ->
    [ { op = (alu_op_code Neg lsl 4) lor src_k
             lor (if op64 then cls_alu64 else cls_alu);
        dst = reg dst; src = 0; off = 0; imm = 0l } ]
  | Alu { op64; op; dst; src } ->
    let cls = if op64 then cls_alu64 else cls_alu in
    (match src with
     | Imm imm ->
       [ { op = (alu_op_code op lsl 4) lor src_k lor cls;
           dst = reg dst; src = 0; off = 0; imm } ]
     | Reg s ->
       [ { op = (alu_op_code op lsl 4) lor src_x lor cls;
           dst = reg dst; src = reg s; off = 0; imm = 0l } ])
  | Endian { swap; bits; dst } ->
    [ { op = (op_end lsl 4) lor (if swap then src_x else src_k) lor cls_alu;
        dst = reg dst; src = 0; off = 0; imm = Int32.of_int bits } ]
  | Ld_imm64 (dst, kind) ->
    let src, lo, hi =
      match kind with
      | Const v ->
        ( 0,
          Int64.to_int32 (Word.to_u32 v),
          Int64.to_int32 (Int64.shift_right_logical v 32) )
      | Map_fd fd -> (pseudo_map_fd, Int32.of_int fd, 0l)
      | Map_value (fd, o) -> (pseudo_map_value, Int32.of_int fd, Int32.of_int o)
      | Btf_obj id -> (pseudo_btf_id, Int32.of_int id, 0l)
    in
    [ { op = mode_imm lor size_code DW lor cls_ld;
        dst = reg dst; src; off = 0; imm = lo };
      { op = 0; dst = 0; src = 0; off = 0; imm = hi } ]
  | Ldx { sz; dst; src; off } ->
    [ { op = mode_mem lor size_code sz lor cls_ldx;
        dst = reg dst; src = reg src; off; imm = 0l } ]
  | St { sz; dst; off; imm } ->
    [ { op = mode_mem lor size_code sz lor cls_st;
        dst = reg dst; src = 0; off; imm } ]
  | Stx { sz; dst; src; off } ->
    [ { op = mode_mem lor size_code sz lor cls_stx;
        dst = reg dst; src = reg src; off; imm = 0l } ]
  | Atomic { sz; op; fetch; dst; src; off } ->
    [ { op = mode_atomic lor size_code sz lor cls_stx;
        dst = reg dst; src = reg src; off;
        imm = Int32.of_int (atomic_code op fetch) } ]
  | Jmp { op32; cond; dst; src; _ } ->
    let cls = if op32 then cls_jmp32 else cls_jmp in
    (match src with
     | Imm imm ->
       [ { op = (jmp_code cond lsl 4) lor src_k lor cls;
           dst = reg dst; src = 0; off; imm } ]
     | Reg s ->
       [ { op = (jmp_code cond lsl 4) lor src_x lor cls;
           dst = reg dst; src = reg s; off; imm = 0l } ])
  | Ja _ ->
    [ { op = (op_ja lsl 4) lor cls_jmp; dst = 0; src = 0; off; imm = 0l } ]
  | Call (Helper id) ->
    [ { op = (op_call lsl 4) lor cls_jmp; dst = 0; src = 0; off = 0;
        imm = Int32.of_int id } ]
  | Call (Kfunc id) ->
    [ { op = (op_call lsl 4) lor cls_jmp; dst = 0; src = pseudo_call_kfunc;
        off = 0; imm = Int32.of_int id } ]
  | Call (Local _) ->
    [ { op = (op_call lsl 4) lor cls_jmp; dst = 0; src = pseudo_call_local;
        off = 0; imm = local_imm } ]
  | Exit ->
    [ { op = (op_exit lsl 4) lor cls_jmp; dst = 0; src = 0; off = 0;
        imm = 0l } ]

(* Slot index of each element plus the total slot count. *)
let slot_table (prog : t array) : int array * int =
  let n = Array.length prog in
  let table = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    table.(i + 1) <- table.(i) + slots prog.(i)
  done;
  (table, table.(n))

let encode (prog : t array) : Bytes.t =
  let table, total = slot_table prog in
  let buf = Bytes.make (total * 8) '\000' in
  Array.iteri
    (fun i insn ->
       (* Translate an element-based offset (relative to the next element)
          into a slot-based one (relative to the next slot). *)
       let elem_off d =
         let target = i + 1 + d in
         if target < 0 || target > Array.length prog then
           invalid_arg
             (Printf.sprintf "encode: branch at %d escapes program" i)
         else table.(target) - (table.(i) + slots insn)
       in
       let off, local_imm =
         match insn with
         | Jmp { off; _ } | Ja off -> (elem_off off, 0l)
         | Call (Local d) -> (0, Int32.of_int (elem_off d))
         | _ -> (0, 0l)
       in
       let raws = lower insn ~off ~local_imm in
       List.iteri
         (fun k r -> raw_to_bytes buf ((table.(i) + k) * 8) r)
         raws)
    prog;
  buf

type error = { pos : int; reason : string }

let err pos fmt = Format.kasprintf (fun reason -> Error { pos; reason }) fmt

(* Decode a raw slot sequence back into structured instructions.  Branch
   offsets are translated from slot units back to element units;
   ill-formed opcodes, truncated LD_IMM64 and branches into the middle of
   an LD_IMM64 are rejected. *)
let decode (bytes : Bytes.t) : (t array, error) result =
  if Bytes.length bytes mod 8 <> 0 then
    err 0 "byte length %d not a multiple of 8" (Bytes.length bytes)
  else begin
    let nslots = Bytes.length bytes / 8 in
    let exception Fail of error in
    let fail pos fmt =
      Format.kasprintf (fun reason -> raise (Fail { pos; reason })) fmt
    in
    (* First pass: structured insns plus slot->element maps. *)
    let insns = ref [] in
    let elem_of_slot = Array.make (nslots + 1) (-1) in
    let slot_of_elem = ref [] in
    let getreg pos n =
      match reg_of_int n with
      | Some r when n <= 10 -> r
      | Some _ | None -> fail pos "invalid register %d" n
    in
    (try
       let slot = ref 0 in
       let elem = ref 0 in
       while !slot < nslots do
         let pos = !slot in
         let r = raw_of_bytes bytes (pos * 8) in
         let cls = r.op land 0x07 in
         let structured, width =
           if cls = cls_alu || cls = cls_alu64 then begin
             let opc = (r.op lsr 4) land 0xf in
             let is_x = r.op land 0x08 <> 0 in
             if opc = op_end then begin
               let bits = Int32.to_int r.imm in
               if bits <> 16 && bits <> 32 && bits <> 64 then
                 fail pos "invalid endian width %d" bits;
               (Endian { swap = is_x; bits; dst = getreg pos r.dst }, 1)
             end
             else
               match alu_op_of_code opc with
               | None -> fail pos "invalid alu opcode %#x" r.op
               | Some op ->
                 let src =
                   if op = Neg then Imm 0l
                   else if is_x then Reg (getreg pos r.src)
                   else Imm r.imm
                 in
                 (Alu { op64 = cls = cls_alu64; op; dst = getreg pos r.dst;
                        src }, 1)
           end
           else if cls = cls_jmp || cls = cls_jmp32 then begin
             let opc = (r.op lsr 4) land 0xf in
             let is_x = r.op land 0x08 <> 0 in
             if opc = op_ja then
               if cls = cls_jmp32 then fail pos "JA in jmp32 class"
               else (Ja r.off, 1)
             else if opc = op_call then begin
               if cls = cls_jmp32 then fail pos "CALL in jmp32 class";
               let imm = Int32.to_int r.imm in
               if r.src = 0 then (Call (Helper imm), 1)
               else if r.src = pseudo_call_local then (Call (Local imm), 1)
               else if r.src = pseudo_call_kfunc then (Call (Kfunc imm), 1)
               else fail pos "invalid call pseudo src %d" r.src
             end
             else if opc = op_exit then
               if cls = cls_jmp32 then fail pos "EXIT in jmp32 class"
               else (Exit, 1)
             else
               match jmp_cond_of_code opc with
               | None -> fail pos "invalid jmp opcode %#x" r.op
               | Some cond ->
                 let src =
                   if is_x then Reg (getreg pos r.src) else Imm r.imm
                 in
                 (Jmp { op32 = cls = cls_jmp32; cond;
                        dst = getreg pos r.dst; src; off = r.off }, 1)
           end
           else if cls = cls_ld then begin
             if r.op <> (mode_imm lor size_code DW lor cls_ld) then
               fail pos "unsupported ld opcode %#x" r.op;
             if pos + 1 >= nslots then fail pos "truncated ld_imm64";
             let r2 = raw_of_bytes bytes ((pos + 1) * 8) in
             if r2.op <> 0 then fail pos "bad ld_imm64 second slot";
             let dst = getreg pos r.dst in
             let kind =
               let lo = Int64.logand (Int64.of_int32 r.imm) 0xFFFF_FFFFL in
               if r.src = 0 then
                 Const
                   (Int64.logor lo
                      (Int64.shift_left (Int64.of_int32 r2.imm) 32))
               else if r.src = pseudo_map_fd then Map_fd (Int32.to_int r.imm)
               else if r.src = pseudo_map_value then
                 Map_value (Int32.to_int r.imm, Int32.to_int r2.imm)
               else if r.src = pseudo_btf_id then Btf_obj (Int32.to_int r.imm)
               else fail pos "invalid ld_imm64 pseudo src %d" r.src
             in
             (Ld_imm64 (dst, kind), 2)
           end
           else if cls = cls_ldx then begin
             match size_of_code (r.op land 0x18) with
             | Some sz when r.op land 0xe0 = mode_mem ->
               (Ldx { sz; dst = getreg pos r.dst; src = getreg pos r.src;
                      off = r.off }, 1)
             | Some _ | None -> fail pos "invalid ldx opcode %#x" r.op
           end
           else if cls = cls_st then begin
             match size_of_code (r.op land 0x18) with
             | Some sz when r.op land 0xe0 = mode_mem ->
               (St { sz; dst = getreg pos r.dst; off = r.off; imm = r.imm },
                1)
             | Some _ | None -> fail pos "invalid st opcode %#x" r.op
           end
           else begin
             (* cls_stx *)
             match size_of_code (r.op land 0x18) with
             | Some sz when r.op land 0xe0 = mode_mem ->
               (Stx { sz; dst = getreg pos r.dst; src = getreg pos r.src;
                      off = r.off }, 1)
             | Some sz when r.op land 0xe0 = mode_atomic -> begin
                 match atomic_of_code (Int32.to_int r.imm) with
                 | Some (op, fetch) ->
                   if sz <> W && sz <> DW then
                     fail pos "atomic requires word/dword size";
                   (Atomic { sz; op; fetch; dst = getreg pos r.dst;
                             src = getreg pos r.src; off = r.off }, 1)
                 | None -> fail pos "invalid atomic op %#lx" r.imm
               end
             | Some _ | None -> fail pos "invalid stx opcode %#x" r.op
           end
         in
         elem_of_slot.(!slot) <- !elem;
         slot_of_elem := !slot :: !slot_of_elem;
         insns := structured :: !insns;
         slot := !slot + width;
         incr elem
       done;
       elem_of_slot.(nslots) <- !elem;
       let prog = Array.of_list (List.rev !insns) in
       let slot_of_elem = Array.of_list (List.rev !slot_of_elem) in
       let nelems = Array.length prog in
       (* Second pass: translate slot offsets to element offsets. *)
       let retarget i slot_off =
         let this_slot = slot_of_elem.(i) in
         let target_slot = this_slot + slots prog.(i) + slot_off in
         if target_slot < 0 || target_slot > nslots then
           fail this_slot "branch target slot %d out of range" target_slot
         else if target_slot = nslots then nelems - (i + 1)
         else begin
           let target = elem_of_slot.(target_slot) in
           if target < 0 then
             fail this_slot "branch into the middle of ld_imm64"
           else target - (i + 1)
         end
       in
       let prog =
         Array.mapi
           (fun i insn ->
              match insn with
              | Jmp j -> Jmp { j with off = retarget i j.off }
              | Ja off -> Ja (retarget i off)
              | Call (Local d) -> Call (Local (retarget i d))
              | Alu _ | Endian _ | Ld_imm64 _ | Ldx _ | St _ | Stx _
              | Atomic _ | Call (Helper _) | Call (Kfunc _) | Exit -> insn)
           prog
       in
       Ok prog
     with Fail e -> Error e)
  end
