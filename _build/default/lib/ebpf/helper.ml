(* Catalogue of helper functions and kfuncs: the declarative prototypes the
   verifier checks call sites against, and the attributes the simulated
   kernel uses to execute them.

   Ids follow the real uapi numbering where a counterpart exists
   (bpf_map_lookup_elem = 1, bpf_spin_lock = 93, ...).  The sanitizing
   functions introduced by the paper's kernel patches
   (bpf_asan_load{8,16,32,64} / bpf_asan_store* / bpf_asan_check_alu) are
   internal: they can be emitted only by the rewrite passes, never by
   programs, mirroring how the patched kernel hides them from userspace. *)

type arg =
  | Anything            (* any initialized value *)
  | Const_map_ptr
  | Map_key             (* pointer to key_size initialized bytes *)
  | Map_value           (* pointer to value_size initialized bytes *)
  | Mem_rd              (* pointer to initialized memory; size is the
                           following [Size] argument *)
  | Mem_wr              (* pointer to writable memory; size follows *)
  | Size of { max : int; allow_zero : bool }
  | Ctx
  | Btf_task            (* trusted pointer to a task_struct *)
  | Spin_lock           (* pointer to a bpf_spin_lock inside a map value *)
  | Scalar_const        (* scalar whose value must be verifier-known *)

type ret =
  | R_integer
  | R_void
  | R_map_value_or_null
  | R_btf_task_or_null
  | R_ringbuf_mem_or_null

(* Behavioural attributes interpreted by the simulated kernel: they decide
   which indicator-#2 capture mechanism a buggy invocation trips. *)
type attr =
  | Acquires_lock of string   (* lock class acquired internally *)
  | Fires_tracepoint of string
  | Sends_signal
  | Queues_irq_work
  | Writes_mem                (* fills a Mem_wr argument *)
  | Allocates                 (* returns fresh memory (ringbuf reserve) *)
  | Releases                  (* consumes a referenced object *)

type t = {
  id : int;
  name : string;
  args : arg list;
  ret : ret;
  prog_types : Prog.prog_type list option; (* None = any *)
  since : Version.t;
  attrs : attr list;
  internal : bool;
}

let mk ?(prog_types = None) ?(since = Version.V5_15) ?(attrs = [])
    ?(internal = false) id name args ret =
  { id; name; args; ret; prog_types; since; attrs; internal }

let tracing_only =
  Some [ Prog.Kprobe; Prog.Tracepoint; Prog.Raw_tracepoint; Prog.Perf_event ]

(* -- Public helpers ------------------------------------------------- *)

let map_lookup_elem = mk 1 "map_lookup_elem"
    [ Const_map_ptr; Map_key ] R_map_value_or_null

let map_update_elem = mk 2 "map_update_elem"
    [ Const_map_ptr; Map_key; Map_value; Anything ] R_integer

let map_delete_elem = mk 3 "map_delete_elem"
    [ Const_map_ptr; Map_key ] R_integer

let probe_read = mk 4 "probe_read"
    ~prog_types:tracing_only
    [ Mem_wr; Size { max = 512; allow_zero = true }; Anything ] R_integer
    ~attrs:[ Writes_mem ]

let ktime_get_ns = mk 5 "ktime_get_ns" [] R_integer

let trace_printk = mk 6 "trace_printk"
    ~prog_types:tracing_only
    [ Mem_rd; Size { max = 64; allow_zero = false }; Anything ] R_integer
    ~attrs:[ Acquires_lock "trace_printk_buf"; Fires_tracepoint "contention_begin" ]

let get_prandom_u32 = mk 7 "get_prandom_u32" [] R_integer

let get_smp_processor_id = mk 8 "get_smp_processor_id" [] R_integer

let get_current_pid_tgid = mk 14 "get_current_pid_tgid"
    ~prog_types:tracing_only [] R_integer

let get_current_uid_gid = mk 15 "get_current_uid_gid"
    ~prog_types:tracing_only [] R_integer

let get_current_comm = mk 16 "get_current_comm"
    ~prog_types:tracing_only
    [ Mem_wr; Size { max = 16; allow_zero = false } ] R_integer
    ~attrs:[ Writes_mem ]

let skb_load_bytes = mk 26 "skb_load_bytes"
    ~prog_types:(Some [ Prog.Socket_filter; Prog.Cgroup_skb ])
    [ Ctx; Anything; Mem_wr; Size { max = 256; allow_zero = false } ]
    R_integer ~attrs:[ Writes_mem ]

let get_current_task = mk 35 "get_current_task"
    ~prog_types:tracing_only [] R_integer

let get_stackid = mk 27 "get_stackid"
    ~prog_types:tracing_only
    [ Ctx; Const_map_ptr; Anything ] R_integer

let spin_lock = mk 93 "spin_lock" [ Spin_lock ] R_void
    ~attrs:[ Acquires_lock "map_value_lock";
             Fires_tracepoint "contention_begin" ]

let spin_unlock = mk 94 "spin_unlock" [ Spin_lock ] R_void

let send_signal = mk 109 "send_signal"
    ~prog_types:tracing_only ~since:Version.V5_15
    [ Anything ] R_integer ~attrs:[ Sends_signal ]

let probe_read_kernel = mk 113 "probe_read_kernel"
    ~prog_types:tracing_only
    [ Mem_wr; Size { max = 512; allow_zero = true }; Anything ] R_integer
    ~attrs:[ Writes_mem ]

let ringbuf_output = mk 130 "ringbuf_output"
    ~since:Version.V5_15
    [ Const_map_ptr; Mem_rd; Size { max = 4096; allow_zero = false };
      Anything ]
    R_integer ~attrs:[ Queues_irq_work ]

let ringbuf_reserve = mk 131 "ringbuf_reserve"
    ~since:Version.V5_15
    [ Const_map_ptr; Scalar_const; Anything ] R_ringbuf_mem_or_null
    ~attrs:[ Allocates ]

let ringbuf_submit = mk 132 "ringbuf_submit"
    ~since:Version.V5_15 [ Anything; Anything ] R_void
    ~attrs:[ Releases; Queues_irq_work ]

let ringbuf_discard = mk 133 "ringbuf_discard"
    ~since:Version.V5_15 [ Anything; Anything ] R_void ~attrs:[ Releases ]

let get_current_task_btf = mk 158 "get_current_task_btf"
    ~prog_types:tracing_only ~since:Version.V6_1 [] R_btf_task_or_null

let task_pt_regs = mk 175 "task_pt_regs"
    ~prog_types:tracing_only ~since:Version.V6_1 [ Btf_task ] R_integer

let snprintf = mk 165 "snprintf"
    ~since:Version.V6_1
    [ Mem_wr; Size { max = 512; allow_zero = false }; Mem_rd;
      Size { max = 64; allow_zero = true }; Anything ]
    R_integer ~attrs:[ Writes_mem ]

let loop = mk 181 "loop"
    ~since:Version.V6_1
    [ Anything; Anything; Anything; Anything ] R_integer

let ktime_get_boot_ns = mk 125 "ktime_get_boot_ns" [] R_integer

let jiffies64 = mk 118 "jiffies64" [] R_integer

(* -- Internal sanitizing functions (the paper's kernel patches) ------ *)

let asan_base = 0x0f00

let asan_load sz =
  mk (asan_base + sz) (Printf.sprintf "bpf_asan_load%d" (sz * 8))
    [ Anything ] R_void ~internal:true

let asan_store sz =
  mk (asan_base + 0x10 + sz) (Printf.sprintf "bpf_asan_store%d" (sz * 8))
    [ Anything ] R_void ~internal:true

let asan_load8 = asan_load 1
let asan_load16 = asan_load 2
let asan_load32 = asan_load 4
let asan_load64 = asan_load 8
let asan_store8 = asan_store 1
let asan_store16 = asan_store 2
let asan_store32 = asan_store 4
let asan_store64 = asan_store 8

(* alu_limit runtime assertion: R1 = runtime offset, R2 = limit. *)
let asan_check_alu =
  mk (asan_base + 0x20) "bpf_asan_check_alu" [ Anything; Anything ] R_void
    ~internal:true

(* Probe-read variants for exception-tabled loads (BTF pointers): like
   asan_load, but faulting on NULL/unmapped addresses is tolerated (the
   kernel's copy_from_kernel_nofault handles those); only redzone and
   use-after-free poisoning is reported. *)
let asan_probe (sz : int) =
  mk (asan_base + 0x30 + sz) (Printf.sprintf "bpf_asan_probe%d" (sz * 8))
    [ Anything ] R_void ~internal:true

let asan_probe8 = asan_probe 1
let asan_probe16 = asan_probe 2
let asan_probe32 = asan_probe 4
let asan_probe64 = asan_probe 8

let internal_helpers =
  [ asan_load8; asan_load16; asan_load32; asan_load64; asan_store8;
    asan_store16; asan_store32; asan_store64; asan_check_alu;
    asan_probe8; asan_probe16; asan_probe32; asan_probe64 ]

let public_helpers =
  [ map_lookup_elem; map_update_elem; map_delete_elem; probe_read;
    ktime_get_ns; trace_printk; get_prandom_u32; get_smp_processor_id;
    get_current_pid_tgid; get_current_uid_gid; get_current_comm;
    skb_load_bytes; get_current_task; get_stackid; spin_lock; spin_unlock;
    send_signal; probe_read_kernel; ringbuf_output; ringbuf_reserve;
    ringbuf_submit; ringbuf_discard; get_current_task_btf; task_pt_regs;
    snprintf; loop; ktime_get_boot_ns; jiffies64 ]

let all = public_helpers @ internal_helpers

let by_id : (int, t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun h -> Hashtbl.replace tbl h.id h) all;
  tbl

let find (id : int) : t option = Hashtbl.find_opt by_id id

let find_exn id =
  match find id with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "unknown helper id %d" id)

(* Helpers available to a program of [pt] under kernel [version]. *)
let available ~(version : Version.t) ~(pt : Prog.prog_type) : t list =
  List.filter
    (fun h ->
       Version.at_least version h.since
       && (match h.prog_types with
           | None -> true
           | Some pts -> List.mem pt pts))
    public_helpers

(* -- Kfuncs ---------------------------------------------------------- *)

(* A small kfunc catalogue (kernel functions callable since v6.1 via
   BPF_PSEUDO_KFUNC_CALL).  [bug3_backtrack] marks the call kind whose
   backtracking mishandling reproduces paper Bug#3. *)
type kfunc = {
  kid : int;
  kname : string;
  kargs : arg list;
  kret : ret;
  ksince : Version.t;
  kacquire : bool; (* returns a reference that must be released *)
  krelease : bool;
}

let kfunc_task_from_pid =
  { kid = 1; kname = "bpf_task_from_pid"; kargs = [ Anything ];
    kret = R_btf_task_or_null; ksince = Version.V6_1; kacquire = true;
    krelease = false }

let kfunc_task_release =
  { kid = 2; kname = "bpf_task_release"; kargs = [ Btf_task ];
    kret = R_void; ksince = Version.V6_1; kacquire = false;
    krelease = true }

let kfunc_obj_id =
  { kid = 3; kname = "bpf_obj_id"; kargs = [ Anything ];
    kret = R_integer; ksince = Version.V6_1; kacquire = false;
    krelease = false }

let kfuncs = [ kfunc_task_from_pid; kfunc_task_release; kfunc_obj_id ]

let find_kfunc id = List.find_opt (fun k -> k.kid = id) kfuncs

let kfuncs_available ~version =
  List.filter (fun k -> Version.at_least version k.ksince) kfuncs
