(* 64/32-bit machine-word arithmetic shared by the verifier's abstract
   domain and the concrete interpreter.  eBPF semantics: 32-bit (ALU32)
   operations compute on the low 32 bits and zero-extend the result into
   the destination register. *)

let mask32 = 0xFFFF_FFFFL

let to_u32 (x : int64) : int64 = Int64.logand x mask32

(* Sign-extend the low [bits] bits of [x] to 64 bits. *)
let sext (bits : int) (x : int64) : int64 =
  let shift = 64 - bits in
  Int64.shift_right (Int64.shift_left x shift) shift

let sext8 x = sext 8 x
let sext16 x = sext 16 x
let sext32 x = sext 32 x

(* Truncate to an unsigned [bits]-bit value (zero-extended). *)
let zext (bits : int) (x : int64) : int64 =
  if bits >= 64 then x
  else Int64.logand x (Int64.sub (Int64.shift_left 1L bits) 1L)

let zext8 x = zext 8 x
let zext16 x = zext 16 x

(* Unsigned comparison on int64 bit patterns. *)
let ucmp (a : int64) (b : int64) : int = Int64.unsigned_compare a b
let ult a b = ucmp a b < 0
let ule a b = ucmp a b <= 0
let ugt a b = ucmp a b > 0
let uge a b = ucmp a b >= 0

let umin a b = if ult a b then a else b
let umax a b = if ugt a b then a else b
let smin (a : int64) b = if a < b then a else b
let smax (a : int64) b = if a > b then a else b

(* eBPF division semantics: division by zero yields 0, modulo by zero
   yields the dividend; BPF_DIV/BPF_MOD are unsigned unless the offset
   field selects the signed variant (not modelled here - we expose both). *)
let udiv a b = if b = 0L then 0L else Int64.unsigned_div a b
let umod a b = if b = 0L then a else Int64.unsigned_rem a b
let sdiv a b =
  if b = 0L then 0L
  else if a = Int64.min_int && b = -1L then Int64.min_int
  else Int64.div a b
let smod a b =
  if b = 0L then a
  else if a = Int64.min_int && b = -1L then 0L
  else Int64.rem a b

(* Shifts: eBPF masks the shift amount to the operand width. *)
let shl64 a b = Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
let shr64 a b = Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
let ashr64 a b = Int64.shift_right a (Int64.to_int (Int64.logand b 63L))

let shl32 a b =
  to_u32 (Int64.shift_left (to_u32 a) (Int64.to_int (Int64.logand b 31L)))
let shr32 a b =
  Int64.shift_right_logical (to_u32 a) (Int64.to_int (Int64.logand b 31L))
let ashr32 a b =
  to_u32
    (Int64.shift_right (sext32 a) (Int64.to_int (Int64.logand b 31L)))

let bswap16 (x : int64) : int64 =
  let x = Int64.to_int (zext16 x) in
  Int64.of_int (((x land 0xff) lsl 8) lor ((x lsr 8) land 0xff))

let bswap32 (x : int64) : int64 =
  let b i = Int64.to_int (Int64.logand (shr64 x (Int64.of_int (i * 8))) 0xffL) in
  let combine acc byte = Int64.logor (Int64.shift_left acc 8) (Int64.of_int byte) in
  List.fold_left combine 0L [ b 0; b 1; b 2; b 3 ]

let bswap64 (x : int64) : int64 =
  let b i = Int64.to_int (Int64.logand (shr64 x (Int64.of_int (i * 8))) 0xffL) in
  let combine acc byte = Int64.logor (Int64.shift_left acc 8) (Int64.of_int byte) in
  List.fold_left combine 0L [ b 0; b 1; b 2; b 3; b 4; b 5; b 6; b 7 ]

(* Read/write little-endian values of [sz] bytes inside a Bytes.t. *)
let get_le (data : Bytes.t) (off : int) (sz : int) : int64 =
  let rec build i acc =
    if i >= sz then acc
    else
      build (i + 1)
        (Int64.logor acc
           (Int64.shift_left
              (Int64.of_int (Char.code (Bytes.get data (off + i))))
              (8 * i)))
  in
  build 0 0L

let set_le (data : Bytes.t) (off : int) (sz : int) (v : int64) : unit =
  for i = 0 to sz - 1 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)
    in
    Bytes.set data (off + i) (Char.chr byte)
  done
