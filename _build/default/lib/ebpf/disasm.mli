(** Program-level pretty printing (numbered listings with helper names
    resolved) and instruction-class statistics used by the acceptance
    experiment. *)

val insn_to_string : Insn.t -> string
(** Like {!Insn.to_string} but resolving helper and kfunc names. *)

val pp_prog : Format.formatter -> Insn.t array -> unit
val prog_to_string : Insn.t array -> string

(** Instruction class counts. *)
type class_histogram = {
  alu : int;
  jmp : int;
  load : int;
  store : int;
  call : int;
  other : int;
}

val empty_histogram : class_histogram
val classify : class_histogram -> Insn.t -> class_histogram
val histogram : Insn.t array -> class_histogram
val histogram_total : class_histogram -> int

val alu_jmp_ratio : class_histogram -> float
(** Fraction of ALU+JMP instructions: the section 6.3 Buzzer
    statistic. *)
