(* Kernel versions used throughout the reproduction.  The paper evaluates
   Linux v5.15, v6.1 and the bpf-next development branch; features (helpers,
   kfuncs, verifier passes) and injected historical bugs are gated on this
   type. *)

type t = V5_15 | V6_1 | Bpf_next

let all = [ V5_15; V6_1; Bpf_next ]

let to_string = function
  | V5_15 -> "v5.15"
  | V6_1 -> "v6.1"
  | Bpf_next -> "bpf-next"

let of_string = function
  | "v5.15" | "5.15" -> Some V5_15
  | "v6.1" | "6.1" -> Some V6_1
  | "bpf-next" | "bpf_next" | "next" -> Some Bpf_next
  | _ -> None

(* Total order on release recency: v5.15 < v6.1 < bpf-next. *)
let rank = function V5_15 -> 0 | V6_1 -> 1 | Bpf_next -> 2
let compare a b = Int.compare (rank a) (rank b)
let at_least v minimum = rank v >= rank minimum
let pp fmt v = Format.pp_print_string fmt (to_string v)
