(* Structured representation of the eBPF instruction set.

   We model the full classic + extended instruction set: ALU/ALU64 with
   register and immediate sources, JMP/JMP32 conditional branches, memory
   loads/stores of all four widths, 128-bit immediate loads with their
   pseudo-source relocations (map fd, map value, BTF object), atomic
   read-modify-write operations, calls (helpers, kfuncs, bpf-to-bpf
   subprograms) and exit.

   Programs are arrays of [t].  Unlike the raw binary encoding where
   LD_IMM64 occupies two 8-byte slots, each element here is one logical
   instruction; all branch offsets are measured in *elements* relative to
   the following instruction.  [Encode] translates to and from the
   slot-based binary encoding, including offset adjustment. *)

type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11

let reg_to_int = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5
  | R6 -> 6 | R7 -> 7 | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11

let reg_of_int = function
  | 0 -> Some R0 | 1 -> Some R1 | 2 -> Some R2 | 3 -> Some R3
  | 4 -> Some R4 | 5 -> Some R5 | 6 -> Some R6 | 7 -> Some R7
  | 8 -> Some R8 | 9 -> Some R9 | 10 -> Some R10 | 11 -> Some R11
  | _ -> None

let all_regs = [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10 ]

let pp_reg fmt r = Format.fprintf fmt "r%d" (reg_to_int r)

type size = B | H | W | DW

let size_bytes = function B -> 1 | H -> 2 | W -> 4 | DW -> 8
let size_bits s = 8 * size_bytes s

let pp_size fmt s =
  Format.pp_print_string fmt
    (match s with B -> "u8" | H -> "u16" | W -> "u32" | DW -> "u64")

type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

let alu_op_to_string = function
  | Add -> "+=" | Sub -> "-=" | Mul -> "*=" | Div -> "/=" | Or -> "|="
  | And -> "&=" | Lsh -> "<<=" | Rsh -> ">>=" | Neg -> "neg" | Mod -> "%="
  | Xor -> "^=" | Mov -> "=" | Arsh -> "s>>="

type cond =
  | Jeq | Jne | Jgt | Jge | Jlt | Jle | Jsgt | Jsge | Jslt | Jsle | Jset

let cond_to_string = function
  | Jeq -> "==" | Jne -> "!=" | Jgt -> ">" | Jge -> ">=" | Jlt -> "<"
  | Jle -> "<=" | Jsgt -> "s>" | Jsge -> "s>=" | Jslt -> "s<"
  | Jsle -> "s<=" | Jset -> "&"

(* Logical negation of a branch condition (used for branch analysis). *)
let cond_negate = function
  | Jeq -> Jne | Jne -> Jeq | Jgt -> Jle | Jle -> Jgt | Jge -> Jlt
  | Jlt -> Jge | Jsgt -> Jsle | Jsle -> Jsgt | Jsge -> Jslt | Jslt -> Jsge
  | Jset -> Jset (* no exact negation; handled specially by callers *)

(* Condition with operands swapped: a OP b <=> b (swap OP) a. *)
let cond_swap = function
  | Jeq -> Jeq | Jne -> Jne | Jgt -> Jlt | Jlt -> Jgt | Jge -> Jle
  | Jle -> Jge | Jsgt -> Jslt | Jslt -> Jsgt | Jsge -> Jsle | Jsle -> Jsge
  | Jset -> Jset

type src = Imm of int32 | Reg of reg

let pp_src fmt = function
  | Imm i -> Format.fprintf fmt "%ld" i
  | Reg r -> pp_reg fmt r

(* Pseudo-relocations carried by the 128-bit immediate load, mirroring the
   src_reg pseudo values of the kernel (BPF_PSEUDO_MAP_FD etc.).  [Btf_obj]
   plays the role of BPF_PSEUDO_BTF_ID: the address of a typed kernel
   object (e.g. a task_struct), a pointer the program may use without a
   null check. *)
type ld64_kind =
  | Const of int64
  | Map_fd of int
  | Map_value of int * int (* map fd, offset into the value *)
  | Btf_obj of int         (* BTF object id in the simulated kernel *)

type call_target =
  | Helper of int      (* stable helper function id, see {!Helper} *)
  | Kfunc of int       (* kernel function (BTF id); src_reg pseudo 2 *)
  | Local of int       (* bpf-to-bpf call, element offset to target-1 *)

type atomic_op = A_add | A_or | A_and | A_xor | A_xchg | A_cmpxchg

let atomic_op_to_string = function
  | A_add -> "add" | A_or -> "or" | A_and -> "and" | A_xor -> "xor"
  | A_xchg -> "xchg" | A_cmpxchg -> "cmpxchg"

type t =
  | Alu of { op64 : bool; op : alu_op; dst : reg; src : src }
  | Endian of { swap : bool; bits : int; dst : reg }
    (* bswap16/32/64; [swap]=false is the no-op to-little conversion *)
  | Ld_imm64 of reg * ld64_kind
  | Ldx of { sz : size; dst : reg; src : reg; off : int }
  | St of { sz : size; dst : reg; off : int; imm : int32 }
  | Stx of { sz : size; dst : reg; src : reg; off : int }
  | Atomic of
      { sz : size; op : atomic_op; fetch : bool; dst : reg; src : reg;
        off : int }
  | Jmp of { op32 : bool; cond : cond; dst : reg; src : src; off : int }
  | Ja of int
  | Call of call_target
  | Exit

(* Number of 8-byte slots the instruction occupies in the wire encoding. *)
let slots = function Ld_imm64 _ -> 2 | _ -> 1

let prog_slots (prog : t array) : int =
  Array.fold_left (fun acc i -> acc + slots i) 0 prog

(* Registers read / written, used for triage slicing and dead-code style
   analyses.  R10 is always readable (frame pointer); calls clobber
   R0-R5. *)
let src_reg_of = function Imm _ -> None | Reg r -> Some r

let regs_read (i : t) : reg list =
  match i with
  | Alu { op = Mov; src; _ } -> Option.to_list (src_reg_of src)
  | Alu { op = Neg; dst; _ } -> [ dst ]
  | Alu { dst; src; _ } -> dst :: Option.to_list (src_reg_of src)
  | Endian { dst; _ } -> [ dst ]
  | Ld_imm64 _ -> []
  | Ldx { src; _ } -> [ src ]
  | St { dst; _ } -> [ dst ]
  | Stx { dst; src; _ } -> [ dst; src ]
  | Atomic { dst; src; _ } -> [ dst; src ]
  | Jmp { dst; src; _ } -> dst :: Option.to_list (src_reg_of src)
  | Ja _ -> []
  | Call _ -> [ R1; R2; R3; R4; R5 ]
  | Exit -> [ R0 ]

let regs_written (i : t) : reg list =
  match i with
  | Alu { dst; _ } | Endian { dst; _ } | Ld_imm64 (dst, _) | Ldx { dst; _ }
    -> [ dst ]
  | Atomic { fetch = true; src; _ } -> [ src ]
  | Atomic { op = A_cmpxchg; _ } -> [ R0 ]
  | Atomic _ | St _ | Stx _ | Jmp _ | Ja _ | Exit -> []
  | Call _ -> [ R0; R1; R2; R3; R4; R5 ]

let equal (a : t) (b : t) = a = b

let pp fmt (i : t) =
  match i with
  | Alu { op64; op = Neg; dst; _ } ->
    Format.fprintf fmt "%a = -%a%s" pp_reg dst pp_reg dst
      (if op64 then "" else " (w)")
  | Alu { op64; op; dst; src } ->
    Format.fprintf fmt "%a %s %a%s" pp_reg dst (alu_op_to_string op) pp_src
      src
      (if op64 then "" else " (w)")
  | Endian { swap; bits; dst } ->
    Format.fprintf fmt "%a = %s%d %a" pp_reg dst
      (if swap then "bswap" else "le")
      bits pp_reg dst
  | Ld_imm64 (dst, Const v) ->
    Format.fprintf fmt "%a = %Ld ll" pp_reg dst v
  | Ld_imm64 (dst, Map_fd fd) ->
    Format.fprintf fmt "%a = map_fd(%d)" pp_reg dst fd
  | Ld_imm64 (dst, Map_value (fd, off)) ->
    Format.fprintf fmt "%a = map_value(%d)+%d" pp_reg dst fd off
  | Ld_imm64 (dst, Btf_obj id) ->
    Format.fprintf fmt "%a = btf_obj(%d)" pp_reg dst id
  | Ldx { sz; dst; src; off } ->
    Format.fprintf fmt "%a = *(%a *)(%a %+d)" pp_reg dst pp_size sz pp_reg
      src off
  | St { sz; dst; off; imm } ->
    Format.fprintf fmt "*(%a *)(%a %+d) = %ld" pp_size sz pp_reg dst off imm
  | Stx { sz; dst; src; off } ->
    Format.fprintf fmt "*(%a *)(%a %+d) = %a" pp_size sz pp_reg dst off
      pp_reg src
  | Atomic { sz; op; fetch; dst; src; off } ->
    Format.fprintf fmt "lock *(%a *)(%a %+d) %s%s %a" pp_size sz pp_reg dst
      off
      (atomic_op_to_string op)
      (if fetch then "_fetch" else "")
      pp_reg src
  | Jmp { op32; cond; dst; src; off } ->
    Format.fprintf fmt "if %a %s %a goto %+d%s" pp_reg dst
      (cond_to_string cond) pp_src src off
      (if op32 then " (w)" else "")
  | Ja off -> Format.fprintf fmt "goto %+d" off
  | Call (Helper id) -> Format.fprintf fmt "call helper#%d" id
  | Call (Kfunc id) -> Format.fprintf fmt "call kfunc#%d" id
  | Call (Local off) -> Format.fprintf fmt "call local%+d" off
  | Exit -> Format.pp_print_string fmt "exit"

let to_string i = Format.asprintf "%a" pp i
