(* Program-level pretty printing: numbered listings in the style used by
   the paper's figures, with helper names resolved. *)

let insn_to_string (i : Insn.t) : string =
  match i with
  | Insn.Call (Insn.Helper id) -> begin
      match Helper.find id with
      | Some h -> Printf.sprintf "call %s" h.Helper.name
      | None -> Printf.sprintf "call helper#%d" id
    end
  | Insn.Call (Insn.Kfunc id) -> begin
      match Helper.find_kfunc id with
      | Some k -> Printf.sprintf "call %s" k.Helper.kname
      | None -> Printf.sprintf "call kfunc#%d" id
    end
  | _ -> Insn.to_string i

let pp_prog fmt (prog : Insn.t array) =
  Array.iteri
    (fun idx i -> Format.fprintf fmt "%3d: %s@." idx (insn_to_string i))
    prog

let prog_to_string (prog : Insn.t array) : string =
  Format.asprintf "%a" pp_prog prog

(* Histogram of instruction classes, used by the acceptance-rate
   experiment (the Buzzer ALU/JMP-ratio statistic of section 6.3). *)
type class_histogram = {
  alu : int;
  jmp : int;
  load : int;
  store : int;
  call : int;
  other : int;
}

let empty_histogram =
  { alu = 0; jmp = 0; load = 0; store = 0; call = 0; other = 0 }

let classify (h : class_histogram) (i : Insn.t) : class_histogram =
  match i with
  | Insn.Alu _ | Insn.Endian _ -> { h with alu = h.alu + 1 }
  | Insn.Jmp _ | Insn.Ja _ -> { h with jmp = h.jmp + 1 }
  | Insn.Ldx _ | Insn.Ld_imm64 _ -> { h with load = h.load + 1 }
  | Insn.St _ | Insn.Stx _ | Insn.Atomic _ -> { h with store = h.store + 1 }
  | Insn.Call _ -> { h with call = h.call + 1 }
  | Insn.Exit -> { h with other = h.other + 1 }

let histogram (prog : Insn.t array) : class_histogram =
  Array.fold_left classify empty_histogram prog

let histogram_total h = h.alu + h.jmp + h.load + h.store + h.call + h.other

let alu_jmp_ratio (h : class_histogram) : float =
  let total = histogram_total h in
  if total = 0 then 0.0
  else float_of_int (h.alu + h.jmp) /. float_of_int total
