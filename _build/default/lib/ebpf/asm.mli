(** Assembler-style construction helpers mirroring the kernel's BPF_*
    macros, so hand-written programs read close to the paper's
    listings. *)

open Insn

val mov64_imm : reg -> int32 -> t
val mov64_reg : reg -> reg -> t
val mov32_imm : reg -> int32 -> t
val mov32_reg : reg -> reg -> t

val alu64_imm : alu_op -> reg -> int32 -> t
val alu64_reg : alu_op -> reg -> reg -> t
val alu32_imm : alu_op -> reg -> int32 -> t
val alu32_reg : alu_op -> reg -> reg -> t

val neg64 : reg -> t

val ld_imm64 : reg -> int64 -> t
val ld_map_fd : reg -> int -> t
val ld_map_value : reg -> int -> int -> t
val ld_btf_obj : reg -> int -> t

val ldx : size -> reg -> reg -> int -> t
(** [ldx sz dst src off]: [dst = *(sz * )(src + off)]. *)

val ldx_b : reg -> reg -> int -> t
val ldx_h : reg -> reg -> int -> t
val ldx_w : reg -> reg -> int -> t
val ldx_dw : reg -> reg -> int -> t

val st : size -> reg -> int -> int32 -> t
(** [st sz dst off imm]: [*(sz * )(dst + off) = imm]. *)

val st_b : reg -> int -> int32 -> t
val st_h : reg -> int -> int32 -> t
val st_w : reg -> int -> int32 -> t
val st_dw : reg -> int -> int32 -> t

val stx : size -> reg -> reg -> int -> t
(** [stx sz dst src off]: [*(sz * )(dst + off) = src]. *)

val stx_b : reg -> reg -> int -> t
val stx_h : reg -> reg -> int -> t
val stx_w : reg -> reg -> int -> t
val stx_dw : reg -> reg -> int -> t

val atomic : ?fetch:bool -> size -> atomic_op -> reg -> reg -> int -> t

val jmp_imm : cond -> reg -> int32 -> int -> t
(** [jmp_imm cond dst imm off]: [if dst cond imm goto +off]. *)

val jmp_reg : cond -> reg -> reg -> int -> t
val jmp32_imm : cond -> reg -> int32 -> int -> t
val jmp32_reg : cond -> reg -> reg -> int -> t

val ja : int -> t
val call : int -> t
val call_kfunc : int -> t
val call_local : int -> t
val exit_ : t

val ret : int32 -> t list
(** [ret imm] is the [r0 = imm; exit] epilogue. *)

val prog : t list list -> t array
(** Concatenate fragments into a program. *)
