(** eBPF program types and their context-object layouts.

    Each program type runs with R1 pointing at a type-specific context
    structure; the verifier validates every context access against the
    layout, and fields of kind [Fk_pkt_data]/[Fk_pkt_end] load packet
    pointers instead of scalars, feeding the packet-range analysis. *)

type field_kind =
  | Fk_scalar
  | Fk_pkt_data (** loads PTR_TO_PACKET *)
  | Fk_pkt_end  (** loads PTR_TO_PACKET_END *)

type field = {
  fname : string;
  foff : int;
  fsize : int;
  fwritable : bool;
  fkind : field_kind;
}

type ctx_layout = { ctx_size : int; fields : field list }

type prog_type =
  | Socket_filter
  | Kprobe
  | Tracepoint
  | Raw_tracepoint
  | Xdp
  | Perf_event
  | Cgroup_skb

val all_prog_types : prog_type list
val prog_type_to_string : prog_type -> string
val prog_type_of_string : string -> prog_type option
val pp_prog_type : Format.formatter -> prog_type -> unit

val sk_buff_layout : ctx_layout
val xdp_layout : ctx_layout
val kprobe_layout : ctx_layout
val tracepoint_layout : ctx_layout
val raw_tracepoint_layout : ctx_layout
val perf_event_layout : ctx_layout

val ctx_layout : prog_type -> ctx_layout

val field_at : ctx_layout -> off:int -> size:int -> field option
(** The field at exactly [off] with exactly [size], as the kernel's
    narrow-access tables require. *)

val return_range : prog_type -> (int64 * int64) option
(** Allowed R0 range at EXIT, or [None] when unconstrained (tracing). *)

val has_packet_access : prog_type -> bool
val is_tracing : prog_type -> bool

val stack_size : int
(** Per-frame eBPF stack size: 512 bytes. *)

val max_insns : int
(** Loader instruction-count limit (scaled-down BPF_MAXINSNS). *)
