(** Structured representation of the eBPF instruction set.

    Programs are arrays of {!t}.  Unlike the raw binary encoding, where
    LD_IMM64 occupies two 8-byte slots, each element here is one logical
    instruction and all branch offsets are measured in {e elements}
    relative to the following instruction.  {!Encode} translates to and
    from the slot-based wire encoding, including offset adjustment. *)

(** Registers.  [R0]-[R9] are program-visible, [R10] is the read-only
    frame pointer, and [R11] is the hidden auxiliary register only the
    sanitation rewrite may use. *)
type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11

val reg_to_int : reg -> int
val reg_of_int : int -> reg option

val all_regs : reg list
(** Program-visible registers, [R0]-[R10]. *)

val pp_reg : Format.formatter -> reg -> unit

(** Access widths: byte, half word, word, double word. *)
type size = B | H | W | DW

val size_bytes : size -> int
val size_bits : size -> int
val pp_size : Format.formatter -> size -> unit

(** ALU operation codes (BPF_ADD .. BPF_ARSH plus BPF_MOV). *)
type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

val alu_op_to_string : alu_op -> string

(** Conditional jump codes. *)
type cond =
  | Jeq | Jne | Jgt | Jge | Jlt | Jle | Jsgt | Jsge | Jslt | Jsle | Jset

val cond_to_string : cond -> string

val cond_negate : cond -> cond
(** Logical negation; [Jset] has no exact negation and maps to itself. *)

val cond_swap : cond -> cond
(** Condition with swapped operands: [a OP b <=> b (swap OP) a]. *)

(** Second operand: 32-bit immediate or register. *)
type src = Imm of int32 | Reg of reg

val pp_src : Format.formatter -> src -> unit

(** Pseudo-relocations carried by LD_IMM64, mirroring the kernel's
    src_reg pseudo values.  [Btf_obj] plays the role of
    BPF_PSEUDO_BTF_ID: the address of a typed kernel object the program
    may use without a null check. *)
type ld64_kind =
  | Const of int64
  | Map_fd of int
  | Map_value of int * int (** map fd, offset into the value *)
  | Btf_obj of int         (** BTF object id in the simulated kernel *)

(** Call targets: helpers by stable id, kernel functions (kfuncs), and
    bpf-to-bpf subprogram calls (element offset, like a jump). *)
type call_target =
  | Helper of int
  | Kfunc of int
  | Local of int

(** Atomic read-modify-write operations. *)
type atomic_op = A_add | A_or | A_and | A_xor | A_xchg | A_cmpxchg

val atomic_op_to_string : atomic_op -> string

(** One eBPF instruction. *)
type t =
  | Alu of { op64 : bool; op : alu_op; dst : reg; src : src }
  | Endian of { swap : bool; bits : int; dst : reg }
      (** bswap16/32/64; [swap]=false is the to-little no-op *)
  | Ld_imm64 of reg * ld64_kind
  | Ldx of { sz : size; dst : reg; src : reg; off : int }
  | St of { sz : size; dst : reg; off : int; imm : int32 }
  | Stx of { sz : size; dst : reg; src : reg; off : int }
  | Atomic of
      { sz : size; op : atomic_op; fetch : bool; dst : reg; src : reg;
        off : int }
  | Jmp of { op32 : bool; cond : cond; dst : reg; src : src; off : int }
  | Ja of int
  | Call of call_target
  | Exit

val slots : t -> int
(** 8-byte slots in the wire encoding: 2 for [Ld_imm64], 1 otherwise. *)

val prog_slots : t array -> int

val src_reg_of : src -> reg option

val regs_read : t -> reg list
(** Registers whose values the instruction consumes (calls read
    [R1]-[R5]). *)

val regs_written : t -> reg list
(** Registers the instruction may write (calls clobber [R0]-[R5]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
