(** Coverage-guided corpus: programs that exercised new verifier
    branches are preserved and serve as mutation seeds, mirroring the
    Syzkaller feedback loop BVF reuses (paper section 5). *)

type entry = {
  request : Bvf_verifier.Verifier.request;
  new_edges : int;
  added_at : int;
}

type t

val create : ?max_size:int -> unit -> t
val size : t -> int

val add :
  t -> iteration:int -> new_edges:int -> Bvf_verifier.Verifier.request ->
  unit
(** Entries contributing no new edges are dropped; when full, the
    weakest half is evicted. *)

val pick : t -> Rng.t -> Bvf_verifier.Verifier.request option
(** Weighted towards entries that contributed more edges, with a recency
    bonus. *)
