open Cimport

(* Bug triage (paper section 6.5 "Bug Triage"): given a faulting
   program, pinpoint the guilty instruction from the report's program
   counter and slice backwards through the def-use chain to collect the
   operations that produced its operands — the starting point for
   locating the incorrect verifier logic. *)

type slice = {
  guilty_pc : int option;
  guilty : Insn.t option;
  relevant : (int * Insn.t) list; (* backward def-use slice, in order *)
}

(* Registers whose values feed instruction [i]. *)
let deps_of (i : Insn.t) : Insn.reg list = Insn.regs_read i

(* Walk backwards from [pc], tracking which registers we still need the
   definition of.  Control flow is approximated linearly (sound enough
   for triage display purposes). *)
let backward_slice (insns : Insn.t array) (pc : int) : (int * Insn.t) list
  =
  if pc < 0 || pc >= Array.length insns then []
  else begin
    let needed = ref (deps_of insns.(pc)) in
    let out = ref [] in
    let remove r = needed := List.filter (fun x -> x <> r) !needed in
    let add r = if not (List.mem r !needed) then needed := r :: !needed in
    let idx = ref (pc - 1) in
    while !idx >= 0 && !needed <> [] do
      let i = insns.(!idx) in
      let writes = Insn.regs_written i in
      let relevant = List.exists (fun w -> List.mem w !needed) writes in
      if relevant then begin
        out := (!idx, i) :: !out;
        List.iter remove writes;
        List.iter add (deps_of i)
      end;
      decr idx
    done;
    !out
  end

let slice_report (prog : Verifier.loaded) (report : Report.t) : slice =
  match report.Report.pc with
  | None -> { guilty_pc = None; guilty = None; relevant = [] }
  | Some pc ->
    let insns = prog.Verifier.l_insns in
    if pc < 0 || pc >= Array.length insns then
      { guilty_pc = Some pc; guilty = None; relevant = [] }
    else
      { guilty_pc = Some pc; guilty = Some insns.(pc);
        relevant = backward_slice insns pc }

let pp_slice fmt (s : slice) : unit =
  (match s.guilty_pc, s.guilty with
   | Some pc, Some i ->
     Format.fprintf fmt "guilty insn at %d: %s@." pc (Disasm.insn_to_string i)
   | Some pc, None -> Format.fprintf fmt "guilty pc %d (out of range)@." pc
   | None, _ -> Format.fprintf fmt "no guilty pc recorded@.");
  List.iter
    (fun (pc, i) ->
       Format.fprintf fmt "  dep %3d: %s@." pc (Disasm.insn_to_string i))
    s.relevant

let slice_to_string (s : slice) : string =
  Format.asprintf "%a" pp_slice s
