open Cimport

(* Fuzzing campaign driver: the outer loop of Figure 3.  One campaign
   owns a simulated kernel (recreated when it "crashes", like rebooting
   a fuzzing VM), a coverage map that persists across reboots, a corpus
   of coverage-increasing inputs, and the dedup table of findings.

   The driver is strategy-parametric so the same harness runs BVF and
   the Syzkaller/Buzzer baselines under identical conditions (same
   syscall surface, same coverage instrumentation) — the methodology of
   the paper's section 6.3. *)

type strategy = {
  s_name : string;
  s_feedback : bool; (* coverage-guided corpus mutation *)
  s_generate :
    Rng.t -> Gen.config -> Verifier.request option -> Verifier.request;
    (* seed program (from the corpus) provided when feedback is on *)
}

(* The paper's tool: structured generation + coverage feedback. *)
let bvf_strategy : strategy =
  {
    s_name = "BVF";
    s_feedback = true;
    s_generate =
      (fun rng cfg seed ->
         match seed with
         | Some req when Rng.chance rng 0.4 ->
           Mutate.mutate_request rng ~version:cfg.Gen.c_version req
         | Some _ | None -> Gen.generate rng cfg);
  }

type found = {
  fd_finding : Oracle.finding;
  fd_iteration : int;
  fd_request : Verifier.request;
}

type sample = { sa_iteration : int; sa_edges : int }

type stats = {
  st_tool : string;
  st_version : Version.t;
  mutable st_generated : int;
  mutable st_accepted : int;
  mutable st_rejected : int;
  st_errno : (Venv.errno, int) Hashtbl.t;
  st_findings : (string, found) Hashtbl.t; (* fingerprint -> first *)
  mutable st_curve : sample list;          (* newest first *)
  mutable st_histogram : Disasm.class_histogram;
  mutable st_edges : int;
  mutable st_reboots : int;
}

let acceptance_rate (s : stats) : float =
  if s.st_generated = 0 then 0.0
  else float_of_int s.st_accepted /. float_of_int s.st_generated

let bugs_found (s : stats) : Kconfig.bug list =
  Hashtbl.fold
    (fun _ f acc ->
       match f.fd_finding.Oracle.f_bug with
       | Some b when not (List.mem b acc) -> b :: acc
       | _ -> acc)
    s.st_findings []

let correctness_bugs_found (s : stats) : Kconfig.bug list =
  Hashtbl.fold
    (fun _ f acc ->
       match f.fd_finding.Oracle.f_bug with
       | Some b
         when f.fd_finding.Oracle.f_correctness && not (List.mem b acc) ->
         b :: acc
       | _ -> acc)
    s.st_findings []

(* Standard map population for a session: one of each interesting kind. *)
let standard_maps (session : Loader.t) : (int * Map.def) list =
  let defs =
    [ Map.array_def ~value_size:48 ~max_entries:4 ();
      Map.hash_def ~key_size:8 ~value_size:48 ~max_entries:8 ();
      Map.hash_def ~key_size:8 ~value_size:64 ~has_spin_lock:true ();
      Map.ringbuf_def ~max_entries:4096 () ]
  in
  List.map (fun d -> (Loader.create_map session d, d)) defs

(* A report that leaves the simulated kernel unusable. *)
let is_fatal (r : Report.t) : bool =
  match r.Report.kind with
  | Report.Panic _ -> true
  | Report.Lock_violation (Lockdep.Recursive_lock _)
  | Report.Lock_violation (Lockdep.Held_at_exit _) -> true
  | Report.Lock_violation _ | Report.Mem_fault _ | Report.Warn _
  | Report.Alu_limit _ | Report.Runaway_execution -> false

type t = {
  config : Kconfig.t;
  strategy : strategy;
  rng : Rng.t;
  cov : Coverage.t;
  corpus : Corpus.t;
  stats : stats;
  mutable session : Loader.t;
  mutable gen_config : Gen.config;
  sample_every : int;
}

let reboot (c : t) : unit =
  c.session <- Loader.create ~cov:c.cov c.config;
  c.gen_config <-
    { Gen.c_version = c.config.Kconfig.version;
      c_maps = standard_maps c.session };
  c.stats.st_reboots <- c.stats.st_reboots + 1

let create ?(sample_every = 64) ~(seed : int) (strategy : strategy)
    (config : Kconfig.t) : t =
  let cov = Coverage.create () in
  let session = Loader.create ~cov config in
  let gen_config =
    { Gen.c_version = config.Kconfig.version;
      c_maps = standard_maps session }
  in
  {
    config;
    strategy;
    rng = Rng.create seed;
    cov;
    corpus = Corpus.create ();
    stats =
      {
        st_tool = strategy.s_name;
        st_version = config.Kconfig.version;
        st_generated = 0;
        st_accepted = 0;
        st_rejected = 0;
        st_errno = Hashtbl.create 8;
        st_findings = Hashtbl.create 32;
        st_curve = [];
        st_histogram = Disasm.empty_histogram;
        st_edges = 0;
        st_reboots = 0;
      };
    session;
    gen_config;
    sample_every;
  }

(* One fuzzing iteration: generate (or mutate), load, run, classify. *)
let step (c : t) : unit =
  let stats = c.stats in
  let iteration = stats.st_generated in
  let seed_req =
    if c.strategy.s_feedback then Corpus.pick c.corpus c.rng else None
  in
  let req = c.strategy.s_generate c.rng c.gen_config seed_req in
  stats.st_generated <- stats.st_generated + 1;
  stats.st_histogram <-
    Array.fold_left Disasm.classify stats.st_histogram
      req.Verifier.r_insns;
  (* snapshot local coverage through a per-run local edge table: the
     loader records into the shared map; we measure growth *)
  let edges_before = Coverage.edge_count c.cov in
  let result = Loader.load_and_run c.session req in
  let new_edges = Coverage.edge_count c.cov - edges_before in
  (match result.Loader.verdict with
   | Ok _ -> stats.st_accepted <- stats.st_accepted + 1
   | Error e ->
     stats.st_rejected <- stats.st_rejected + 1;
     let k = e.Venv.errno in
     Hashtbl.replace stats.st_errno k
       (1 + Option.value (Hashtbl.find_opt stats.st_errno k) ~default:0));
  if c.strategy.s_feedback then
    Corpus.add c.corpus ~iteration ~new_edges req;
  let findings = Oracle.classify c.config result in
  List.iter
    (fun f ->
       let key =
         f.Oracle.f_fingerprint
         ^ (match f.Oracle.f_bug with
             | Some b -> "|" ^ Kconfig.bug_to_string b
             | None -> "")
       in
       if not (Hashtbl.mem stats.st_findings key) then
         Hashtbl.replace stats.st_findings key
           { fd_finding = f; fd_iteration = iteration; fd_request = req })
    findings;
  (* crash handling: reboot the kernel on fatal anomalies *)
  if List.exists is_fatal result.Loader.reports then reboot c
  else Bvf_kernel.Kmem.compact c.session.Loader.kst.Kstate.mem;
  if iteration mod c.sample_every = 0 then
    stats.st_curve <-
      { sa_iteration = iteration; sa_edges = Coverage.edge_count c.cov }
      :: stats.st_curve;
  stats.st_edges <- Coverage.edge_count c.cov

let run ?(sample_every = 64) ~(seed : int) ~(iterations : int)
    (strategy : strategy) (config : Kconfig.t) : stats =
  let c = create ~sample_every ~seed strategy config in
  for _ = 1 to iterations do
    step c
  done;
  c.stats.st_curve <-
    { sa_iteration = iterations; sa_edges = Coverage.edge_count c.cov }
    :: c.stats.st_curve;
  c.stats

let pp_summary fmt (s : stats) : unit =
  Format.fprintf fmt
    "%s on %s: %d programs, %.1f%% accepted, %d edges, %d findings (%d bugs, %d correctness), %d reboots@."
    s.st_tool
    (Version.to_string s.st_version)
    s.st_generated
    (100.0 *. acceptance_rate s)
    s.st_edges
    (Hashtbl.length s.st_findings)
    (List.length (bugs_found s))
    (List.length (correctness_bugs_found s))
    s.st_reboots
