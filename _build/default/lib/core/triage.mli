(** Bug triage (paper section 6.5): pinpoint the guilty instruction from
    a report's program counter and slice backwards through the def-use
    chain to collect the operations that produced its operands — the
    starting point for locating the incorrect verifier logic. *)

type slice = {
  guilty_pc : int option;
  guilty : Bvf_ebpf.Insn.t option;
  relevant : (int * Bvf_ebpf.Insn.t) list; (** backward def-use slice *)
}

val deps_of : Bvf_ebpf.Insn.t -> Bvf_ebpf.Insn.reg list

val backward_slice :
  Bvf_ebpf.Insn.t array -> int -> (int * Bvf_ebpf.Insn.t) list
(** Linear backward def-use walk from the given pc. *)

val slice_report :
  Bvf_verifier.Verifier.loaded -> Bvf_kernel.Report.t -> slice

val pp_slice : Format.formatter -> slice -> unit
val slice_to_string : slice -> string
