open Cimport

(* Mutation operators over generated programs.  Mutations work on the
   structured instruction array; offsets are kept consistent where the
   operator can do so cheaply (block duplication re-targets contained
   branches), and the verifier rejects the rest — matching how fuzzer
   mutations behave on real eBPF payloads.

   The paper singles out adjacent-instruction duplication as the way
   BVF simulates unrolled loops (section 4.1). *)

let clamp_index rng (n : int) : int = if n = 0 then 0 else Rng.int rng n

(* Duplicate a short adjacent block, the "unrolled loop" mutation.
   Branches inside the copied block keep their relative offsets; a
   branch leaving the block would change meaning, so such blocks are
   not duplicated. *)
let duplicate_block (rng : Rng.t) (insns : Insn.t array) : Insn.t array =
  let n = Array.length insns in
  if n < 4 then insns
  else begin
    let len = 1 + Rng.int rng (min 6 (n / 2)) in
    let start = clamp_index rng (n - len - 1) in
    let block = Array.sub insns start len in
    let self_contained =
      Array.to_list block
      |> List.mapi (fun k i -> (k, i))
      |> List.for_all (fun (k, i) ->
          match i with
          | Insn.Jmp { off; _ } | Insn.Ja off | Insn.Call (Insn.Local off)
            ->
            let target = k + 1 + off in
            target >= 0 && target <= len
          | _ -> true)
    in
    if not self_contained then insns
    else
      Array.concat
        [ Array.sub insns 0 (start + len);
          block;
          Array.sub insns (start + len) (n - start - len) ]
  end

(* Nudge an immediate towards an interesting value. *)
let tweak_imm (rng : Rng.t) (insns : Insn.t array) : Insn.t array =
  let n = Array.length insns in
  if n = 0 then insns
  else begin
    let out = Array.copy insns in
    let i = clamp_index rng n in
    let interesting () = Int64.to_int32 (Rng.interesting rng) in
    out.(i) <-
      (match out.(i) with
       | Insn.Alu ({ src = Insn.Imm _; _ } as a) ->
         Insn.Alu { a with src = Insn.Imm (interesting ()) }
       | Insn.St s -> Insn.St { s with imm = interesting () }
       | Insn.Ld_imm64 (r, Insn.Const _) ->
         Insn.Ld_imm64 (r, Insn.Const (Rng.interesting rng))
       | Insn.Jmp ({ src = Insn.Imm _; _ } as j) ->
         Insn.Jmp { j with src = Insn.Imm (interesting ()) }
       | other -> other);
    out
  end

(* Nudge a memory-access offset: the classic off-by-N probe. *)
let tweak_off (rng : Rng.t) (insns : Insn.t array) : Insn.t array =
  let n = Array.length insns in
  if n = 0 then insns
  else begin
    let out = Array.copy insns in
    let i = clamp_index rng n in
    let delta = Rng.choose rng [ -8; -4; -1; 1; 4; 8 ] in
    out.(i) <-
      (match out.(i) with
       | Insn.Ldx l -> Insn.Ldx { l with off = l.off + delta }
       | Insn.St s -> Insn.St { s with off = s.off + delta }
       | Insn.Stx s -> Insn.Stx { s with off = s.off + delta }
       | Insn.Atomic a -> Insn.Atomic { a with off = a.off + delta }
       | other -> other);
    out
  end

(* Replace one register use with another. *)
let swap_reg (rng : Rng.t) (insns : Insn.t array) : Insn.t array =
  let n = Array.length insns in
  if n = 0 then insns
  else begin
    let out = Array.copy insns in
    let i = clamp_index rng n in
    let fresh () = Rng.choose rng Insn.all_regs in
    out.(i) <-
      (match out.(i) with
       | Insn.Alu a -> Insn.Alu { a with dst = fresh () }
       | Insn.Ldx l -> Insn.Ldx { l with src = fresh () }
       | Insn.Stx s -> Insn.Stx { s with src = fresh () }
       | other -> other);
    out
  end

(* Drop a tail portion and close with a valid epilogue. *)
let truncate (rng : Rng.t) (insns : Insn.t array) : Insn.t array =
  let n = Array.length insns in
  if n < 6 then insns
  else begin
    let keep = 2 + Rng.int rng (n - 4) in
    Array.append (Array.sub insns 0 keep)
      [| Asm.mov64_imm Insn.R0 0l; Asm.exit_ |]
  end

(* Apply one random mutation. *)
let mutate (rng : Rng.t) (insns : Insn.t array) : Insn.t array =
  match
    Rng.weighted rng
      [ (3, `Dup); (3, `Imm); (2, `Off); (1, `Reg); (1, `Trunc) ]
  with
  | `Dup -> duplicate_block rng insns
  | `Imm -> tweak_imm rng insns
  | `Off -> tweak_off rng insns
  | `Reg -> swap_reg rng insns
  | `Trunc -> truncate rng insns

(* Mutate a full request, occasionally re-targeting the attach point. *)
let mutate_request (rng : Rng.t) ~(version : Version.t)
    (req : Verifier.request) : Verifier.request =
  let req =
    { req with Verifier.r_insns = mutate rng req.Verifier.r_insns }
  in
  if Rng.chance rng 0.15 then
    { req with
      Verifier.r_attach =
        Gen.pick_attach rng ~version req.Verifier.r_prog_type }
  else req
