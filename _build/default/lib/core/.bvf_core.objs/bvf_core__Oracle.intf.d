lib/core/oracle.mli: Bvf_kernel Bvf_runtime
