lib/core/gen.ml: Array Asm Btf Cimport Helper Insn Int32 Int64 List Map Prog Rng Stdlib Tracepoint Verifier Version Word
