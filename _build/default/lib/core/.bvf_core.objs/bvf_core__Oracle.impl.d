lib/core/oracle.ml: Bvf_kernel Cimport Kconfig List Loader Lockdep Printf Report Result String
