lib/core/gen.mli: Bvf_ebpf Bvf_kernel Bvf_verifier Rng
