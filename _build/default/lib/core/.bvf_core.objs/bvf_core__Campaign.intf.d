lib/core/campaign.mli: Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Corpus Format Gen Hashtbl Oracle Rng
