lib/core/triage.ml: Array Cimport Disasm Format Insn List Report Verifier
