lib/core/cimport.ml: Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier
