lib/core/triage.mli: Bvf_ebpf Bvf_kernel Bvf_verifier Format
