lib/core/mutate.ml: Array Asm Cimport Gen Insn Int64 List Rng Verifier Version
