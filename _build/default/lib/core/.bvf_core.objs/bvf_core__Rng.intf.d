lib/core/rng.mli:
