lib/core/mutate.mli: Bvf_ebpf Bvf_verifier Rng
