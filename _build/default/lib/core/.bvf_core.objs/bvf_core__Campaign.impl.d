lib/core/campaign.ml: Array Bvf_kernel Cimport Corpus Coverage Disasm Format Gen Hashtbl Kconfig Kstate List Loader Lockdep Map Mutate Option Oracle Report Rng Venv Verifier Version
