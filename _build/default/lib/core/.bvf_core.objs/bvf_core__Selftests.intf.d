lib/core/selftests.mli: Bvf_ebpf Bvf_runtime Bvf_verifier
