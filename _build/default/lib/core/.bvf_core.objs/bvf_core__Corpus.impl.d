lib/core/corpus.ml: Cimport List Rng Verifier
