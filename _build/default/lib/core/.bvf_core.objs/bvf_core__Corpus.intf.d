lib/core/corpus.mli: Bvf_verifier Rng
