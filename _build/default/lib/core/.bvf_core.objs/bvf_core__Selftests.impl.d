lib/core/selftests.ml: Array Asm Cimport Coverage Gen Helper Insn Int32 Kconfig List Loader Map Prog Result Rng Verifier Version
