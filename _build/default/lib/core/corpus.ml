open Cimport

(* Coverage-guided corpus: programs that exercised new verifier branches
   are preserved and serve as mutation seeds, mirroring the Syzkaller
   feedback loop BVF reuses (paper section 5). *)

type entry = {
  request : Verifier.request;
  new_edges : int;      (* edges this entry contributed when added *)
  added_at : int;       (* iteration number *)
}

type t = {
  mutable entries : entry list;
  mutable total : int;
  max_size : int;
}

let create ?(max_size = 256) () = { entries = []; total = 0; max_size }

let size (t : t) : int = t.total

let add (t : t) ~(iteration : int) ~(new_edges : int)
    (request : Verifier.request) : unit =
  if new_edges > 0 then begin
    t.entries <- { request; new_edges; added_at = iteration } :: t.entries;
    t.total <- t.total + 1;
    if t.total > t.max_size then begin
      (* drop the weakest old half when full *)
      let sorted =
        List.sort (fun a b -> compare b.new_edges a.new_edges) t.entries
      in
      let keep = t.max_size / 2 in
      t.entries <- List.filteri (fun i _ -> i < keep) sorted;
      t.total <- keep
    end
  end

(* Pick a seed: weighted towards entries that contributed more edges,
   with a recency bonus. *)
let pick (t : t) (rng : Rng.t) : Verifier.request option =
  match t.entries with
  | [] -> None
  | entries ->
    let weighted =
      List.map
        (fun e -> (1 + e.new_edges + (e.added_at / 64), e.request))
        entries
    in
    Some (Rng.weighted rng weighted)
