(** Mutation operators over generated programs.  Block duplication (the
    paper's way of simulating unrolled loops), immediate and offset
    nudging towards interesting values, register swaps and tail
    truncation with a valid epilogue. *)

val duplicate_block : Rng.t -> Bvf_ebpf.Insn.t array -> Bvf_ebpf.Insn.t array
(** Duplicate a short adjacent block whose branches stay inside it. *)

val tweak_imm : Rng.t -> Bvf_ebpf.Insn.t array -> Bvf_ebpf.Insn.t array
val tweak_off : Rng.t -> Bvf_ebpf.Insn.t array -> Bvf_ebpf.Insn.t array
val swap_reg : Rng.t -> Bvf_ebpf.Insn.t array -> Bvf_ebpf.Insn.t array
val truncate : Rng.t -> Bvf_ebpf.Insn.t array -> Bvf_ebpf.Insn.t array

val mutate : Rng.t -> Bvf_ebpf.Insn.t array -> Bvf_ebpf.Insn.t array
(** Apply one random mutation. *)

val mutate_request :
  Rng.t -> version:Bvf_ebpf.Version.t -> Bvf_verifier.Verifier.request ->
  Bvf_verifier.Verifier.request
(** Mutate a full request, occasionally re-targeting the attach point. *)
