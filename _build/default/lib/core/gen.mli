(** Structured program generation — the paper's section 4.1.

    Programs are partitioned into an {b init header} (register loading:
    map fds, direct map values, BTF objects, immediates, a saved context
    pointer), a {b framed body} (basic / jump / call frames chosen with
    equal probability, with nested jump frames and occasional bounded
    back-edge loops), and an {b end section} (lock/reference cleanup and
    a valid exit).

    The generator tracks an abstract state per register — the paper's
    "recording the registers' states in different program points, and
    synthesizing operations according to the states" — so emitted
    operations are mostly coherent, while a tunable fraction of
    boundary-probing emissions exercises the verifier's rejection
    edges. *)

(** What the session provides to the generator. *)
type config = {
  c_version : Bvf_ebpf.Version.t;
  c_maps : (int * Bvf_kernel.Map.def) list; (** fds created upfront *)
}

val pick_prog_type : Rng.t -> Bvf_ebpf.Prog.prog_type

val pick_attach :
  Rng.t -> version:Bvf_ebpf.Version.t -> Bvf_ebpf.Prog.prog_type ->
  string option
(** A valid attach point for the program type (or none). *)

val generate : Rng.t -> config -> Bvf_verifier.Verifier.request
(** Generate one structured program request. *)
