(** Fuzzing campaign driver: the outer loop of the paper's Figure 3.

    One campaign owns a simulated kernel (recreated when it "crashes",
    like rebooting a fuzzing VM), a coverage map that persists across
    reboots, a corpus of coverage-increasing inputs, and the dedup table
    of findings.  The driver is strategy-parametric, so the same harness
    runs BVF and the Syzkaller/Buzzer baselines under identical
    conditions (section 6.3's methodology). *)

(** A pluggable generation strategy. *)
type strategy = {
  s_name : string;
  s_feedback : bool; (** coverage-guided corpus mutation *)
  s_generate :
    Rng.t -> Gen.config -> Bvf_verifier.Verifier.request option ->
    Bvf_verifier.Verifier.request;
    (** a corpus seed is supplied when feedback is on *)
}

val bvf_strategy : strategy
(** The paper's tool: structured generation plus coverage feedback. *)

(** A deduplicated finding with discovery metadata. *)
type found = {
  fd_finding : Oracle.finding;
  fd_iteration : int;
  fd_request : Bvf_verifier.Verifier.request;
}

type sample = { sa_iteration : int; sa_edges : int }

type stats = {
  st_tool : string;
  st_version : Bvf_ebpf.Version.t;
  mutable st_generated : int;
  mutable st_accepted : int;
  mutable st_rejected : int;
  st_errno : (Bvf_verifier.Venv.errno, int) Hashtbl.t;
  st_findings : (string, found) Hashtbl.t;
  mutable st_curve : sample list; (** newest first *)
  mutable st_histogram : Bvf_ebpf.Disasm.class_histogram;
  mutable st_edges : int;
  mutable st_reboots : int;
}

val acceptance_rate : stats -> float
val bugs_found : stats -> Bvf_kernel.Kconfig.bug list
val correctness_bugs_found : stats -> Bvf_kernel.Kconfig.bug list

val standard_maps :
  Bvf_runtime.Loader.t -> (int * Bvf_kernel.Map.def) list
(** The session's standard map population: array, hash, spin-lock hash
    and ring buffer. *)

val is_fatal : Bvf_kernel.Report.t -> bool
(** Reports that leave the simulated kernel unusable (reboot). *)

(** A running campaign. *)
type t = {
  config : Bvf_kernel.Kconfig.t;
  strategy : strategy;
  rng : Rng.t;
  cov : Bvf_verifier.Coverage.t;
  corpus : Corpus.t;
  stats : stats;
  mutable session : Bvf_runtime.Loader.t;
  mutable gen_config : Gen.config;
  sample_every : int;
}

val reboot : t -> unit

val create :
  ?sample_every:int -> seed:int -> strategy -> Bvf_kernel.Kconfig.t -> t

val step : t -> unit
(** One fuzzing iteration: generate (or mutate), load, run, classify. *)

val run :
  ?sample_every:int -> seed:int -> iterations:int -> strategy ->
  Bvf_kernel.Kconfig.t -> stats

val pp_summary : Format.formatter -> stats -> unit
