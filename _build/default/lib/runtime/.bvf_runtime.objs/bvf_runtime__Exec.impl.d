lib/runtime/exec.ml: Array Bvf_kernel Bytes Char Helper Helpers_impl Insn Int64 Kconfig Kmem Kstate List Printf Prog Report Rimport Tracepoint Venv Verifier Word
