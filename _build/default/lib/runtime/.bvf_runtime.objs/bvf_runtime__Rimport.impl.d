lib/runtime/rimport.ml: Bvf_ebpf Bvf_kernel Bvf_verifier
