lib/runtime/loader.ml: Array Coverage Dispatcher Exec Kconfig Kstate List Map Prog Report Rimport Tracepoint Venv Verifier
