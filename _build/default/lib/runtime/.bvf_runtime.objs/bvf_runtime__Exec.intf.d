lib/runtime/exec.mli: Bvf_kernel Bvf_verifier
