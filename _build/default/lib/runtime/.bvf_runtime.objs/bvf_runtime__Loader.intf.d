lib/runtime/loader.mli: Bvf_kernel Bvf_verifier Exec
