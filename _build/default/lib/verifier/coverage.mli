(** kcov-style branch coverage over the verifier's decision points.

    Every interesting branch in the analysis registers a static site
    name plus a small variant discriminator; a campaign keeps one global
    [t] and measures the set of new edges per run — the fuzzer's
    feedback signal and the metric of Table 3 / Figure 6. *)

type t = {
  interner : (string, int) Hashtbl.t;
  mutable next_site : int;
  edges : (int, int) Hashtbl.t; (** edge id -> hit count *)
}

val create : unit -> t

val variants_per_site : int

val site_id : t -> string -> int
val edge_id : t -> string -> int -> int
val record : t -> int -> unit

val edge_count : t -> int
(** Distinct edges observed so far. *)

val merge : t -> (int, unit) Hashtbl.t -> int
(** Merge a run's local edge set; returns how many were new. *)

val reset : t -> unit
