(** Post-verification rewrite passes (the kernel's convert_ctx_accesses
    / do_misc_fixups, scaled down): LD_IMM64 pseudo-relocations are
    resolved to concrete kernel addresses, and division/modulo gain the
    zero-divisor guard sequences — a realistic source of
    rewrite-emitted instructions the sanitizer must skip. *)

val resolve_ld :
  Bvf_kernel.Kstate.t -> pc:int -> Bvf_ebpf.Insn.reg ->
  Bvf_ebpf.Insn.ld64_kind -> Bvf_ebpf.Insn.t

val div_guard :
  op64:bool -> Bvf_ebpf.Insn.alu_op -> Bvf_ebpf.Insn.reg ->
  Bvf_ebpf.Insn.reg -> Bvf_ebpf.Insn.t -> Bvf_ebpf.Insn.t list

val run :
  Bvf_kernel.Kstate.t -> insns:Bvf_ebpf.Insn.t array ->
  aux:Venv.aux array -> Bvf_ebpf.Insn.t array * Venv.aux array
