open Vimport

(* Instruction patching infrastructure (kernel bpf_patch_insn_data): a
   rewrite pass replaces single instructions with short sequences, and
   every branch offset in the program is re-targeted accordingly.

   Contract: the replacement list's LAST element is the (possibly
   rewritten) original instruction; branches that targeted the original
   index land on the first inserted instruction, so instrumentation runs
   before the instruction it guards.  Inserted instructions may contain
   small forward jumps that stay within their own group. *)

(* Replacement callback: None keeps the instruction; Some [..; orig']
   replaces it. *)
type rewrite = int -> Insn.t -> Venv.aux -> Insn.t list option

let expand ~(insns : Insn.t array) ~(aux : Venv.aux array) ~(f : rewrite) :
  Insn.t array * Venv.aux array =
  let n = Array.length insns in
  let groups =
    Array.mapi
      (fun i insn ->
         match f i insn aux.(i) with
         | Some (_ :: _ as g) -> g
         | Some [] | None -> [ insn ])
      insns
  in
  let group_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    group_start.(i + 1) <- group_start.(i) + List.length groups.(i)
  done;
  let total = group_start.(n) in
  let out = Array.make total Insn.Exit in
  let out_aux = Array.init total (fun _ -> Venv.fresh_aux ()) in
  Array.iteri
    (fun i group ->
       let len = List.length group in
       List.iteri
         (fun k insn ->
            let pos = group_start.(i) + k in
            if k = len - 1 then begin
              (* the original instruction: keep its aux, retarget *)
              out_aux.(pos) <- aux.(i);
              let retarget off =
                let target = i + 1 + off in
                group_start.(target) - (pos + 1)
              in
              out.(pos) <-
                (match insn with
                 | Insn.Jmp j -> Insn.Jmp { j with off = retarget j.off }
                 | Insn.Ja off -> Insn.Ja (retarget off)
                 | Insn.Call (Insn.Local off) ->
                   Insn.Call (Insn.Local (retarget off))
                 | other -> other)
            end
            else begin
              out_aux.(pos).Venv.rewritten <- true;
              out.(pos) <- insn
            end)
         group)
    groups;
  (out, out_aux)
