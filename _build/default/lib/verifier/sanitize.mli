(** The paper's memory-access sanitation pass (section 4.2): after
    verification, every necessary load/store is prefixed with a dispatch
    to a KASAN-instrumented kernel function, entirely at the eBPF
    instruction level (Figure 5):

    {v r11 = r1 ; r1 = <addr> ; r1 += <off> ; call bpf_asan_load64 ;
       r1 = r11 ; <original access> v}

    ALU instructions carrying an [alu_limit] annotation additionally get
    the inline [assert(offset <= limit)] sequence.  Skipped, per the
    paper's footprint-reduction strategy: R10-relative constant
    accesses, rewrite-emitted instructions, and BTF-pointer loads
    (exception-tabled probe reads get the tolerant check instead). *)

type guard_kind = Gload | Gstore | Gprobe

val asan_fn : guard_kind -> int -> Bvf_ebpf.Helper.t

val mem_guard :
  guard_kind -> addr:Bvf_ebpf.Insn.reg -> off:int -> size:int ->
  Bvf_ebpf.Insn.t -> Bvf_ebpf.Insn.t list

val alu_guard :
  scalar:Bvf_ebpf.Insn.reg -> limit:int64 -> Bvf_ebpf.Insn.t ->
  Bvf_ebpf.Insn.t list

val run :
  insns:Bvf_ebpf.Insn.t array -> aux:Venv.aux array ->
  Bvf_ebpf.Insn.t array * Venv.aux array
