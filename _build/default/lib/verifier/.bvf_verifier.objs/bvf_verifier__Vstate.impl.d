lib/verifier/vstate.ml: Array Hashtbl Insn List Prog Regstate Vimport
