lib/verifier/sanitize.ml: Asm Helper Insn Int32 Int64 Patch Venv Vimport
