lib/verifier/analyze.ml: Array Btf Check_alu Check_call Check_jmp Check_mem Hashtbl Insn Int64 Kconfig Kstate List Map Option Prog Regstate Venv Vimport Vstate
