lib/verifier/tnum.ml: Int64 Printf Vimport Word
