lib/verifier/regstate.ml: Btf Int64 Map Printf Tnum Vimport Word
