lib/verifier/check_jmp.ml: Insn Int64 Kconfig List Regstate Tnum Venv Version Vimport Vstate Word
