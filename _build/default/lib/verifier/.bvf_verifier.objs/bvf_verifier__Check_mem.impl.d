lib/verifier/check_mem.ml: Array Btf Insn Int64 Kconfig List Option Prog Regstate Tnum Venv Version Vimport Vstate
