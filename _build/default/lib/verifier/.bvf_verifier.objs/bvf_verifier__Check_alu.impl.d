lib/verifier/check_alu.ml: Array Btf Char Insn Int64 Kconfig Prog Regstate String Tnum Venv Vimport Word
