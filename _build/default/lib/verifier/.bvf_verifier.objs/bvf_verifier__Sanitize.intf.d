lib/verifier/sanitize.mli: Bvf_ebpf Venv
