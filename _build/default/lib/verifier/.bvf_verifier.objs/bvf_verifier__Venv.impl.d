lib/verifier/venv.ml: Array Buffer Coverage Format Hashtbl Helper Insn Kconfig Kstate Prog Regstate Tracepoint Version Vimport Vstate
