lib/verifier/verifier.mli: Bvf_ebpf Bvf_kernel Coverage Venv
