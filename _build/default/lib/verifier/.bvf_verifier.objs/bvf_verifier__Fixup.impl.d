lib/verifier/fixup.ml: Asm Bytes Insn Int64 Kstate Map Patch Printf Venv Vimport
