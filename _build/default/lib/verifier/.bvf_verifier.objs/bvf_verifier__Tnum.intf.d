lib/verifier/tnum.mli:
