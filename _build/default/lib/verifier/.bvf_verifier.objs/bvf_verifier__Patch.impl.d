lib/verifier/patch.ml: Array Insn List Venv Vimport
