lib/verifier/check_call.ml: Array Btf Check_mem Helper Insn Int64 Kconfig List Lockdep Prog Regstate Tnum Tracepoint Venv Version Vimport Vstate Word
