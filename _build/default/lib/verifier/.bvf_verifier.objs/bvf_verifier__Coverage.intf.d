lib/verifier/coverage.mli: Hashtbl
