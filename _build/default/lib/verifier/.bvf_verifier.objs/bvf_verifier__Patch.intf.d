lib/verifier/patch.mli: Bvf_ebpf Venv
