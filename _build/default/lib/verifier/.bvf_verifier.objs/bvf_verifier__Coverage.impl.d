lib/verifier/coverage.ml: Hashtbl Option
