lib/verifier/verifier.ml: Analyze Array Buffer Bvf_kernel Coverage Fixup Helper Insn Kconfig Kstate List Printf Prog Sanitize Tracepoint Venv Version Vimport
