lib/verifier/fixup.mli: Bvf_ebpf Bvf_kernel Venv
