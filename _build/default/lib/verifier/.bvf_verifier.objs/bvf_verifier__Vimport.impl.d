lib/verifier/vimport.ml: Bvf_ebpf Bvf_kernel
