(** Instruction patching infrastructure (kernel [bpf_patch_insn_data]):
    a rewrite pass replaces single instructions with short sequences and
    every branch offset in the program is re-targeted.

    Contract: the replacement list's LAST element is the (possibly
    rewritten) original instruction; branches that targeted the original
    index land on the first inserted instruction, so instrumentation
    runs before the instruction it guards.  Inserted instructions may
    contain small forward jumps that stay within their own group. *)

type rewrite =
  int -> Bvf_ebpf.Insn.t -> Venv.aux -> Bvf_ebpf.Insn.t list option
(** [None] keeps the instruction; [Some [..; orig']] replaces it. *)

val expand :
  insns:Bvf_ebpf.Insn.t array -> aux:Venv.aux array -> f:rewrite ->
  Bvf_ebpf.Insn.t array * Venv.aux array
(** Inserted instructions get fresh aux marked [rewritten]; the original
    keeps its aux. *)
