open Vimport

(* Verifier state: register file and stack for each call frame, plus the
   acquired-reference and spin-lock bookkeeping, mirroring the kernel's
   bpf_verifier_state / bpf_func_state. *)

type byte_state = B_invalid | B_misc | B_zero | B_spill

type frame = {
  frameno : int;
  mutable regs : Regstate.t array; (* R0..R10 *)
  stack : byte_state array;        (* 512 bytes; index i = fp-512+i *)
  spills : (int, Regstate.t) Hashtbl.t; (* 8-byte slot index -> reg *)
  callsite : int;                  (* pc to return to; -1 in frame 0 *)
}

type t = {
  mutable frames : frame list; (* innermost last *)
  mutable refs : int list;     (* acquired reference ids *)
  mutable active_lock : int option; (* map id whose lock is held *)
}

let stack_bytes = Prog.stack_size

let new_frame ~(frameno : int) ~(callsite : int) : frame =
  let regs = Array.make 11 Regstate.not_init in
  regs.(10) <- Regstate.fp frameno;
  { frameno; regs; stack = Array.make stack_bytes B_invalid;
    spills = Hashtbl.create 8; callsite }

let initial ~(ctx : Regstate.t) : t =
  let f = new_frame ~frameno:0 ~callsite:(-1) in
  f.regs.(1) <- ctx;
  { frames = [ f ]; refs = []; active_lock = None }

let cur_frame (t : t) : frame =
  match List.rev t.frames with
  | f :: _ -> f
  | [] -> invalid_arg "Vstate.cur_frame: no frames"

let frame_count (t : t) : int = List.length t.frames

let copy_frame (f : frame) : frame =
  { f with regs = Array.copy f.regs; stack = Array.copy f.stack;
    spills = Hashtbl.copy f.spills }

let copy (t : t) : t =
  { frames = List.map copy_frame t.frames; refs = t.refs;
    active_lock = t.active_lock }

let reg (t : t) (r : Insn.reg) : Regstate.t =
  (cur_frame t).regs.(Insn.reg_to_int r)

let set_reg (t : t) (r : Insn.reg) (v : Regstate.t) : unit =
  let i = Insn.reg_to_int r in
  if i = 10 then invalid_arg "Vstate.set_reg: frame pointer is read-only";
  (cur_frame t).regs.(i) <- v

(* Apply [f] to every register (all frames) sharing nullable-pointer
   [id]: how a null check on one copy updates the others. *)
let map_regs_with_id (t : t) ~(id : int) (fn : Regstate.t -> Regstate.t) :
  unit =
  let update (fr : frame) =
    Array.iteri
      (fun i r ->
         match r.Regstate.kind with
         | Regstate.Ptr p when p.id = id && id <> 0 -> fr.regs.(i) <- fn r
         | _ -> ())
      fr.regs;
    Hashtbl.iter
      (fun slot r ->
         match r.Regstate.kind with
         | Regstate.Ptr p when p.id = id && id <> 0 ->
           Hashtbl.replace fr.spills slot (fn r)
         | _ -> ())
      (Hashtbl.copy fr.spills)
  in
  List.iter update t.frames

(* Same, for packet pointers sharing [id] (range propagation). *)
let map_packet_regs (t : t) ~(id : int) (fn : Regstate.t -> Regstate.t) :
  unit =
  let update (fr : frame) =
    Array.iteri
      (fun i r ->
         match r.Regstate.kind with
         | Regstate.Ptr { pk = Regstate.P_packet; id = id'; _ }
           when id' = id ->
           fr.regs.(i) <- fn r
         | _ -> ())
      fr.regs
  in
  List.iter update t.frames

(* -- Stack access ------------------------------------------------------ *)

(* Translate a frame-pointer-relative offset (negative) to a stack array
   index. *)
let stack_index (off : int) : int option =
  let i = stack_bytes + off in
  if i >= 0 && i < stack_bytes then Some i else None

let slot_of_off (off : int) : int = (stack_bytes + off) / 8

(* Record a store of [size] bytes at fp+[off].  A full 8-byte aligned
   store of a register spills it; everything else downgrades the bytes
   to misc/zero and kills any overlapping spill. *)
let stack_write (f : frame) ~(off : int) ~(size : int)
    (stored : Regstate.t) : unit =
  let kill_spill_at idx = Hashtbl.remove f.spills (idx / 8) in
  let zero =
    match Regstate.const_value stored with Some 0L -> true | _ -> false
  in
  if size = 8 && (stack_bytes + off) mod 8 = 0 then begin
    let slot = slot_of_off off in
    (match stack_index off with
     | Some base ->
       for i = base to base + 7 do
         f.stack.(i) <- B_spill
       done;
       Hashtbl.replace f.spills slot stored
     | None -> ())
  end
  else begin
    match stack_index off with
    | Some base ->
      for i = base to base + size - 1 do
        kill_spill_at i;
        f.stack.(i) <- (if zero then B_zero else B_misc)
      done
    | None -> ()
  end

(* Read [size] bytes at fp+[off]: the resulting register state, or an
   error string when uninitialized bytes are read. *)
let stack_read (f : frame) ~(off : int) ~(size : int) :
  (Regstate.t, string) result =
  match stack_index off with
  | None -> Error "stack offset out of range"
  | Some base ->
    let slot = slot_of_off off in
    if size = 8 && (stack_bytes + off) mod 8 = 0
       && Hashtbl.mem f.spills slot then
      Ok (Hashtbl.find f.spills slot)
    else begin
      let rec scan i all_zero =
        if i >= size then Ok (if all_zero then `Zero else `Misc)
        else
          match f.stack.(base + i) with
          | B_invalid -> Error "invalid read from stack"
          | B_zero -> scan (i + 1) all_zero
          | B_misc | B_spill -> scan (i + 1) false
      in
      match scan 0 true with
      | Error e -> Error e
      | Ok `Zero -> Ok (Regstate.const_scalar 0L)
      | Ok `Misc -> Ok Regstate.unknown_scalar
    end

(* Are [size] bytes at fp+[off] fully initialized (helper Mem_rd args)? *)
let stack_initialized (f : frame) ~(off : int) ~(size : int) : bool =
  match stack_index off with
  | None -> false
  | Some base ->
    let rec go i =
      i >= size
      || (f.stack.(base + i) <> B_invalid && go (i + 1))
    in
    go 0

(* Mark [size] bytes as written (helper Mem_wr args). *)
let stack_mark_written (f : frame) ~(off : int) ~(size : int) : unit =
  match stack_index off with
  | None -> ()
  | Some base ->
    for i = base to base + size - 1 do
      Hashtbl.remove f.spills (i / 8);
      f.stack.(i) <- B_misc
    done

(* -- Pruning ----------------------------------------------------------- *)

let stack_within ~(old : frame) ~(cur : frame) ~(bug3 : bool) : bool =
  let byte_ok i =
    match old.stack.(i), cur.stack.(i) with
    | B_invalid, _ -> true
    | B_misc, (B_misc | B_zero | B_spill) -> true
    | B_zero, B_zero -> true
    | B_spill, B_spill -> true
    | (B_misc | B_zero | B_spill), _ -> false
  in
  let rec bytes i = i >= stack_bytes || (byte_ok i && bytes (i + 1)) in
  let spills_ok () =
    Hashtbl.fold
      (fun slot old_reg acc ->
         acc
         && (match Hashtbl.find_opt cur.spills slot with
             | Some cur_reg ->
               Regstate.reg_within ~old:old_reg ~cur:cur_reg ~bug3
             | None ->
               (* old spill may have degraded to misc in cur *)
               (match old_reg.Regstate.kind with
                | Regstate.Scalar -> not old_reg.Regstate.precise
                | _ -> false)))
      old.spills true
  in
  bytes 0 && spills_ok ()

let frame_within ~(old : frame) ~(cur : frame) ~(bug3 : bool) : bool =
  old.callsite = cur.callsite
  && (let rec regs i =
        i > 10
        || (Regstate.reg_within ~old:old.regs.(i) ~cur:cur.regs.(i) ~bug3
            && regs (i + 1))
      in
      regs 0)
  && stack_within ~old ~cur ~bug3

let states_equal ~(old : t) ~(cur : t) ~(bug3 : bool) : bool =
  List.length old.frames = List.length cur.frames
  && old.active_lock = cur.active_lock
  && List.length old.refs = List.length cur.refs
  && List.for_all2
    (fun o c -> frame_within ~old:o ~cur:c ~bug3)
    old.frames cur.frames
