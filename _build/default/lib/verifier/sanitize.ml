open Vimport

(* The paper's memory-access sanitation pass (section 4.2): after
   verification, every necessary load/store is prefixed with a dispatch
   to a KASAN-instrumented kernel function, entirely at the eBPF
   instruction level:

      r11 = r1                  ; back up R1 into the hidden register
      r1 = <addr reg>
      r1 += <off>
      call bpf_asan_load64      ; checks [r1, r1+8) against shadow memory
      r1 = r11                  ; restore
      <original load/store>

   The internal asan helpers preserve R0 and R2-R5 through the "extended
   stack" of the patched kernel, so only R1 needs an explicit backup.

   ALU instructions carrying an alu_limit annotation additionally get a
   runtime assertion equivalent to assert(offset <= alu_limit):

      r11 = r1
      r1 = <scalar reg>
      if r1 <= <limit> goto +1
      call bpf_asan_check_alu   ; reports the violation
      r1 = r11
      <original alu>

   Skipped (paper's footprint-reduction strategy): R10-relative accesses
   with constant offsets (statically validated), instructions emitted by
   other rewrite passes, and BTF-pointer loads (exception-tabled probe
   reads). *)

type guard_kind = Gload | Gstore | Gprobe

let asan_fn (kind : guard_kind) (size : int) : Helper.t =
  match kind, size with
  | Gload, 1 -> Helper.asan_load8
  | Gload, 2 -> Helper.asan_load16
  | Gload, 4 -> Helper.asan_load32
  | Gload, _ -> Helper.asan_load64
  | Gstore, 1 -> Helper.asan_store8
  | Gstore, 2 -> Helper.asan_store16
  | Gstore, 4 -> Helper.asan_store32
  | Gstore, _ -> Helper.asan_store64
  | Gprobe, 1 -> Helper.asan_probe8
  | Gprobe, 2 -> Helper.asan_probe16
  | Gprobe, 4 -> Helper.asan_probe32
  | Gprobe, _ -> Helper.asan_probe64

let mem_guard (kind : guard_kind) ~(addr : Insn.reg) ~(off : int)
    ~(size : int) (orig : Insn.t) : Insn.t list =
  let open Asm in
  [ mov64_reg Insn.R11 Insn.R1;
    mov64_reg Insn.R1 addr;
    alu64_imm Insn.Add Insn.R1 (Int32.of_int off);
    call (asan_fn kind size).Helper.id;
    mov64_reg Insn.R1 Insn.R11;
    orig ]

let alu_guard ~(scalar : Insn.reg) ~(limit : int64) (orig : Insn.t) :
  Insn.t list =
  let open Asm in
  let limit32 =
    if limit > 0x7FFF_FFFFL then 0x7FFF_FFFFl
    else if limit < 0L then 0l
    else Int64.to_int32 limit
  in
  [ mov64_reg Insn.R11 Insn.R1;
    mov64_reg Insn.R1 scalar;
    jmp_imm Insn.Jle Insn.R1 limit32 1;
    call Helper.asan_check_alu.Helper.id;
    mov64_reg Insn.R1 Insn.R11;
    orig ]

let rewrite_insn (_pc : int) (insn : Insn.t) (aux : Venv.aux) :
  Insn.t list option =
  if aux.Venv.rewritten || aux.Venv.skip_sanitize then None
  else
    match insn with
    | Insn.Ldx { sz; src; off; _ } ->
      (* exception-tabled (BTF probe-read) loads get the tolerant
         check: poisoned memory is reported, faults are not *)
      let kind = if aux.Venv.exception_handled then Gprobe else Gload in
      Some (mem_guard kind ~addr:src ~off ~size:(Insn.size_bytes sz) insn)
    | Insn.St { sz; dst; off; _ } | Insn.Stx { sz; dst; off; _ } ->
      Some (mem_guard Gstore ~addr:dst ~off
              ~size:(Insn.size_bytes sz) insn)
    | Insn.Atomic { sz; dst; off; _ } ->
      Some (mem_guard Gstore ~addr:dst ~off
              ~size:(Insn.size_bytes sz) insn)
    | Insn.Alu { src = Insn.Reg scalar; _ } -> begin
        match aux.Venv.alu_limit with
        | Some (limit, _is_sub) -> Some (alu_guard ~scalar ~limit insn)
        | None -> None
      end
    | _ -> None

let run ~(insns : Insn.t array) ~(aux : Venv.aux array) :
  Insn.t array * Venv.aux array =
  Patch.expand ~insns ~aux ~f:rewrite_insn
