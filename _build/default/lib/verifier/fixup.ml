open Vimport

(* Post-verification rewrite passes (kernel's convert_ctx_accesses /
   do_misc_fixups, scaled down):

   - LD_IMM64 pseudo-relocations are resolved to concrete kernel
     addresses (map objects, direct map values, BTF object addresses —
     the last of which may legitimately be NULL at runtime);
   - division/modulo instructions gain a zero-divisor guard sequence,
     which doubles as a realistic source of rewrite-emitted instructions
     that the sanitizer must skip (paper section 4.2). *)

let resolve_ld (kst : Kstate.t) ~(pc : int) (dst : Insn.reg)
    (kind : Insn.ld64_kind) : Insn.t =
  match kind with
  | Insn.Const _ -> Insn.Ld_imm64 (dst, kind)
  | Insn.Map_fd fd -> begin
      match Kstate.map_addr kst fd with
      | Some addr -> Insn.Ld_imm64 (dst, Insn.Const addr)
      | None ->
        invalid_arg
          (Printf.sprintf "fixup: unresolved map fd %d at %d" fd pc)
    end
  | Insn.Map_value (fd, off) -> begin
      match Kstate.map_of_fd kst fd with
      | Some m -> begin
          let key = Bytes.make (max 4 m.Map.def.Map.key_size) '\000' in
          match Map.lookup m ~key with
          | Some base ->
            Insn.Ld_imm64 (dst, Insn.Const (Int64.add base (Int64.of_int off)))
          | None ->
            invalid_arg
              (Printf.sprintf "fixup: map %d has no direct value" fd)
        end
      | None ->
        invalid_arg
          (Printf.sprintf "fixup: unresolved map fd %d at %d" fd pc)
    end
  | Insn.Btf_obj id ->
    (* runtime address; NULL when the object is absent on this cpu *)
    Insn.Ld_imm64 (dst, Insn.Const (Kstate.btf_addr kst id))

(* Divisor-zero guard (kernel emits an equivalent sequence for JITs):
     if src != 0 goto +2        (divisor ok: run the division)
     dst = 0 (div) / nop (mod)  (eBPF: x/0 = 0, x%0 = x)
     goto +1                    (skip the division)
     <original div/mod>                                               *)
let div_guard ~(op64 : bool) (op : Insn.alu_op) (dst : Insn.reg)
    (src : Insn.reg) (orig : Insn.t) : Insn.t list =
  let open Asm in
  if op = Insn.Div then
    [ jmp_imm Insn.Jne src 0l 2;
      (if op64 then mov64_imm dst 0l else mov32_imm dst 0l);
      ja 1;
      orig ]
  else if op64 then
    (* mod64-by-zero keeps the dividend: just skip the op *)
    [ jmp_imm Insn.Jeq src 0l 1; orig ]
  else
    (* mod32-by-zero keeps the low half of the dividend, zero-extended *)
    [ jmp_imm Insn.Jne src 0l 2; mov32_reg dst dst; ja 1; orig ]

let run (kst : Kstate.t) ~(insns : Insn.t array)
    ~(aux : Venv.aux array) : Insn.t array * Venv.aux array =
  Patch.expand ~insns ~aux ~f:(fun pc insn _aux ->
      match insn with
      | Insn.Ld_imm64 (dst, kind) -> Some [ resolve_ld kst ~pc dst kind ]
      | Insn.Alu { op64; op = (Insn.Div | Insn.Mod) as op; dst;
                   src = Insn.Reg src } ->
        Some (div_guard ~op64 op dst src insn)
      | _ -> None)
