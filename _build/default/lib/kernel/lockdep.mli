(** A runtime locking-correctness validator in the spirit of Linux
    lockdep: tracks held lock classes per execution and flags the
    deadlock patterns the paper's indicator-#2 bugs manifest as. *)

type context = Normal | Softirq | Hardirq | Nmi

val context_to_string : context -> string

type violation =
  | Recursive_lock of string   (** class acquired while already held *)
  | Unlock_not_held of string
  | Held_at_exit of string list
  | Lock_in_nmi of string      (** acquisition in a forbidden context *)

val violation_to_string : violation -> string

type t = {
  mutable held : string list;  (** innermost first *)
  mutable ctx : context;
  mutable violations : violation list;
}

val create : unit -> t

val acquire : t -> string -> unit
(** Record an acquisition; flags recursion and NMI-context locking. *)

val release : t -> string -> unit
(** Record a release; flags unlock-of-unheld. *)

val holds : t -> string -> bool

val end_of_execution : t -> unit
(** Flag locks still held when an execution returns, and reset. *)

val take_violations : t -> violation list
(** Drain accumulated violations, oldest first. *)
