(* Short aliases for the ISA library modules used across the simulated
   kernel. *)

module Word = Bvf_ebpf.Word
module Version = Bvf_ebpf.Version
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Encode = Bvf_ebpf.Encode
module Disasm = Bvf_ebpf.Disasm
