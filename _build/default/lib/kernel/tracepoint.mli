(** Attach points for tracing programs: tracepoints, kprobe targets and
    perf events, each with the execution context its handlers run in and
    the internal event that fires it.

    [Fired_by_lock_acquisition] marks contention_begin (paper Figure 2);
    [Fired_by_helper] marks kprobes placed on a helper's implementation
    (the Bug#4 trace_printk path). *)

type trigger =
  | Manual
  | Fired_by_lock_acquisition
  | Fired_by_helper of string

type t = {
  tp_name : string;
  tp_ctx : Lockdep.context;
  tp_prog_types : Bvf_ebpf.Prog.prog_type list;
  tp_trigger : trigger;
  tp_since : Bvf_ebpf.Version.t;
}

val catalogue : t list
val find : string -> t option

val available :
  version:Bvf_ebpf.Version.t -> pt:Bvf_ebpf.Prog.prog_type -> t list
(** Attach points a program of type [pt] may use under [version]. *)

val fired_by_helper : string -> t list
val fired_by_lock_acquisition : unit -> t list
