(** BTF-typed kernel objects programs can obtain pointers to.

    [runtime_null] marks objects whose address is NULL on this simulated
    CPU.  The verifier still types them PTR_TO_BTF_ID without a
    maybe_null flag — the asymmetry paper Bug#1 (Listing 2) exploits:
    loads from BTF pointers are exception-tabled and fail gracefully, so
    "no null check required" is safe for dereferences but poisons
    nullness propagation. *)

type desc = {
  btf_id : int;
  btf_name : string;
  btf_size : int;
  runtime_null : bool;
}

val task_struct : desc
val percpu_slot : desc
(** A per-cpu object that is NULL at runtime on this CPU. *)

val cgroup : desc
val catalogue : desc list
val find : int -> desc option

val validated_size : bug2:bool -> desc -> int
(** The window the verifier validates accesses against; with the
    injected Bug#2, 64 bytes too large for [task_struct]. *)
