(** The XDP dispatcher: a trampoline table updated on attach/detach.

    Injected Bug#7: updates were not synchronized with concurrent
    executions, so a dispatch could dereference a slot the update had
    cleared.  The race window is modelled deterministically: with the
    bug, the second and later updates leave one stale NULL slot that the
    next dispatch dereferences. *)

type t = {
  mutable slots : int option array;
  mutable update_count : int;
  mutable stale_null : bool;
}

val n_slots : int
val create : unit -> t
val attached_count : t -> int

val attach : ?bug7:bool -> t -> prog_id:int -> bool
(** Attach a program; [false] when all slots are busy. *)

val detach : t -> prog_id:int -> unit

val dispatch : t -> (int option, Report.t) result
(** Dispatch an event to slot 0; with the Bug#7 window armed, returns
    the null-deref report instead. *)
