(** KASAN-style shadow memory for the simulated kernel address space.

    One shadow byte tracks each 8-byte granule: either the whole granule
    is addressable, only a prefix is, or it is poisoned as redzone,
    freed or unallocated.  The paper's sanitizing functions and the
    KASAN-instrumented kernel routines consult exactly this
    structure. *)

val granule : int
(** Granule size in bytes (8). *)

type poison =
  | Addressable of int (** 1..7 valid prefix bytes *)
  | Fully_addressable
  | Redzone
  | Freed
  | Unallocated

type t

val create : unit -> t

val poison_at : t -> int64 -> poison
(** Poison state of the granule containing an address. *)

val unpoison : t -> addr:int64 -> size:int -> unit
(** Mark [size] bytes at the granule-aligned [addr] addressable.
    @raise Invalid_argument on an unaligned base. *)

val poison : t -> addr:int64 -> size:int -> poison -> unit
(** Poison [size] bytes (rounded up to granules) with the given code. *)

type violation = { bad_addr : int64; bad_poison : poison }

val check : t -> addr:int64 -> size:int -> (unit, violation) result
(** KASAN access check: every byte of [addr, addr+size) must be
    addressable; returns the first offending address otherwise. *)

val poison_to_string : poison -> string
