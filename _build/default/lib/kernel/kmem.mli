(** Simulated kernel memory: an allocator handing out regions of a
    64-bit address space with backing bytes, KASAN shadow tracking and
    redzones.

    Two access disciplines exist, mirroring the real kernel:
    - [checked_*]: the KASAN-instrumented path used by kernel routines
      and the paper's bpf_asan functions; violations produce faults;
    - [raw_*]: what natively-JITed eBPF code does — accesses landing in
      any region (live or freed) or a redzone are {e silent}, only the
      null page and wholly unmapped addresses fault.  This asymmetry is
      why verifier correctness bugs are hard to observe without the
      paper's sanitation. *)

(** What a region backs. *)
type kind =
  | Stack of int
  | Ctx
  | Map_array of int
  | Map_elem of int
  | Ringbuf_chunk of int
  | Btf_object of string
  | Packet
  | Kernel_internal of string

val kind_to_string : kind -> string

type region = {
  base : int64;
  size : int;
  data : Bytes.t;
  rkind : kind;
  mutable live : bool;
}

type t

val redzone : int
(** Redzone bytes after each allocation. *)

val create : unit -> t

val alloc : t -> kind:kind -> size:int -> region
(** Allocate a zeroed region, unpoisoning its shadow and poisoning the
    surrounding redzone. *)

val free : t -> region -> unit
(** Poison the region as freed (use-after-free detection). *)

val compact : ?keep_freed:int -> t -> unit
(** Reclaim old freed regions so long-lived fuzzing sessions stay
    bounded; the most recent [keep_freed] stay poisoned as freed. *)

val region_of : t -> int64 -> region option
(** The region (live or freed) containing an address. *)

val nearest_region_desc : t -> int64 -> string option
(** Description of the region whose body or redzone contains the
    address, for reports. *)

type access = Read | Write

type fault_kind =
  | Null_deref
  | Oob of Shadow.poison
  | Page_fault

type fault = {
  faccess : access;
  faddr : int64;
  fsize : int;
  fkind : fault_kind;
  fregion : string option;
}

val fault_to_string : fault -> string

val null_page_limit : int64

val check : t -> access -> addr:int64 -> size:int -> (unit, fault) result
(** KASAN validity check against shadow memory (no data access). *)

val read_bytes : region -> off:int -> size:int -> int64
val write_bytes : region -> off:int -> size:int -> int64 -> unit

val checked_load : t -> addr:int64 -> size:int -> (int64, fault) result
val checked_store :
  t -> addr:int64 -> size:int -> int64 -> (unit, fault) result

val raw_load : t -> addr:int64 -> size:int -> (int64, fault) result
(** Native-code semantics: silent garbage in redzones and freed memory;
    faults only on the null page or unmapped addresses. *)

val raw_store : t -> addr:int64 -> size:int -> int64 -> (unit, fault) result
