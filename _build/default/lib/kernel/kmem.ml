open Import

(* Simulated kernel memory: an allocator handing out regions of a 64-bit
   address space, with backing bytes, KASAN shadow tracking and redzones.

   Two access paths exist, mirroring the real kernel:

   - [checked_*]: the KASAN-instrumented path used by kernel routines and
     by the paper's bpf_asan_* sanitizing functions; every access is
     validated against shadow memory and violations produce reports.

   - [raw_*]: what natively-JITed eBPF code does.  No shadow check: an
     access that lands inside *some* live or dead region silently reads
     or corrupts memory (exactly why verifier correctness bugs are hard
     to observe), while an access outside any region faults like a page
     fault would, producing a kernel oops. *)

type kind =
  | Stack of int (* eBPF stack, frame number *)
  | Ctx
  | Map_array of int          (* map id; all values contiguous *)
  | Map_elem of int           (* hash map element; map id *)
  | Ringbuf_chunk of int      (* map id *)
  | Btf_object of string      (* kernel object name, e.g. task_struct *)
  | Packet
  | Kernel_internal of string (* buckets, dispatcher tables, ... *)

let kind_to_string = function
  | Stack f -> Printf.sprintf "bpf_stack[frame %d]" f
  | Ctx -> "bpf_ctx"
  | Map_array id -> Printf.sprintf "array_map#%d" id
  | Map_elem id -> Printf.sprintf "htab_elem#%d" id
  | Ringbuf_chunk id -> Printf.sprintf "ringbuf#%d" id
  | Btf_object n -> Printf.sprintf "btf:%s" n
  | Packet -> "packet"
  | Kernel_internal n -> Printf.sprintf "kernel:%s" n

type region = {
  base : int64;
  size : int;
  data : Bytes.t;
  rkind : kind;
  mutable live : bool;
}

type t = {
  shadow : Shadow.t;
  mutable regions : region list; (* most recently allocated first *)
  mutable next : int64;
  mutable last_hit : region option; (* accessor memo: locality is high *)
}

let redzone = 64
let base_addr = 0x4000_0000_0000L

let create () =
  { shadow = Shadow.create (); regions = []; next = base_addr;
    last_hit = None }

let align8 n = (n + 7) / 8 * 8

let alloc (t : t) ~(kind : kind) ~(size : int) : region =
  if size <= 0 then invalid_arg "Kmem.alloc: size must be positive";
  let base = t.next in
  let r = { base; size; data = Bytes.make size '\000'; rkind = kind;
            live = true } in
  t.next <- Int64.add t.next (Int64.of_int (align8 size + redzone));
  Shadow.poison t.shadow ~addr:base ~size:(align8 size + redzone)
    Shadow.Redzone;
  Shadow.unpoison t.shadow ~addr:base ~size;
  t.regions <- r :: t.regions;
  r

let free (t : t) (r : region) : unit =
  if r.live then begin
    r.live <- false;
    (match t.last_hit with
     | Some hit when hit == r -> t.last_hit <- None
     | _ -> ());
    Shadow.poison t.shadow ~addr:r.base ~size:(align8 r.size) Shadow.Freed
  end

(* Reclaim old freed regions so long-lived instances (fuzzing sessions)
   do not accumulate unbounded region lists.  The most recent
   [keep_freed] freed regions stay poisoned as Freed for use-after-free
   detection; older ones return to Unallocated. *)
let compact ?(keep_freed = 64) (t : t) : unit =
  t.last_hit <- None;
  let seen = ref 0 in
  t.regions <-
    List.filter
      (fun r ->
         if r.live then true
         else begin
           incr seen;
           if !seen > keep_freed then begin
             Shadow.poison t.shadow ~addr:r.base ~size:(align8 r.size)
               Shadow.Unallocated;
             false
           end
           else true
         end)
      t.regions

(* Region whose [base, base+size) contains [addr] (live or freed). *)
let region_of (t : t) (addr : int64) : region option =
  let contains (r : region) =
    Word.uge addr r.base
    && Word.ult addr (Int64.add r.base (Int64.of_int r.size))
  in
  match t.last_hit with
  | Some r when contains r -> Some r
  | Some _ | None ->
    let found = List.find_opt contains t.regions in
    (match found with Some _ -> t.last_hit <- found | None -> ());
    found

type access = Read | Write

type fault_kind =
  | Null_deref
  | Oob of Shadow.poison (* shadow violation: redzone / UAF / wild *)
  | Page_fault           (* raw access outside any region *)

type fault = {
  faccess : access;
  faddr : int64;
  fsize : int;
  fkind : fault_kind;
  fregion : string option; (* nearest region description, for reports *)
}

let fault_to_string (f : fault) : string =
  let dir = match f.faccess with Read -> "read" | Write -> "write" in
  let what =
    match f.fkind with
    | Null_deref -> "null-ptr-deref"
    | Oob p -> Printf.sprintf "kasan: %s" (Shadow.poison_to_string p)
    | Page_fault -> "page-fault"
  in
  Printf.sprintf "%s on %s of size %d at 0x%Lx%s" what dir f.fsize f.faddr
    (match f.fregion with
     | Some r -> Printf.sprintf " (near %s)" r
     | None -> "")

let null_page_limit = 4096L

let nearest_region_desc (t : t) (addr : int64) : string option =
  let near r =
    let lo = Int64.sub r.base (Int64.of_int redzone) in
    let hi = Int64.add r.base (Int64.of_int (r.size + redzone)) in
    Word.uge addr lo && Word.ult addr hi
  in
  match List.find_opt near t.regions with
  | Some r -> Some (kind_to_string r.rkind)
  | None -> None

(* KASAN-checked access validity. *)
let check (t : t) (faccess : access) ~(addr : int64) ~(size : int) :
  (unit, fault) result =
  if Word.ult addr null_page_limit then
    Error { faccess; faddr = addr; fsize = size; fkind = Null_deref;
            fregion = None }
  else
    match Shadow.check t.shadow ~addr ~size with
    | Ok () -> Ok ()
    | Error v ->
      Error
        { faccess; faddr = v.Shadow.bad_addr; fsize = size;
          fkind = Oob v.Shadow.bad_poison;
          fregion = nearest_region_desc t addr }

let read_bytes (r : region) ~(off : int) ~(size : int) : int64 =
  Word.get_le r.data off size

let write_bytes (r : region) ~(off : int) ~(size : int) (v : int64) : unit =
  Word.set_le r.data off size v

(* Checked (KASAN) load/store used by kernel routines and sanitizers. *)
let checked_load (t : t) ~(addr : int64) ~(size : int) :
  (int64, fault) result =
  match check t Read ~addr ~size with
  | Error f -> Error f
  | Ok () -> begin
      match region_of t addr with
      | Some r when r.live ->
        Ok (read_bytes r ~off:(Int64.to_int (Int64.sub addr r.base)) ~size)
      | Some _ | None ->
        (* shadow said OK but no live region backs it: treat as wild *)
        Error { faccess = Read; faddr = addr; fsize = size;
                fkind = Oob Shadow.Unallocated; fregion = None }
    end

let checked_store (t : t) ~(addr : int64) ~(size : int) (v : int64) :
  (unit, fault) result =
  match check t Write ~addr ~size with
  | Error f -> Error f
  | Ok () -> begin
      match region_of t addr with
      | Some r when r.live ->
        write_bytes r ~off:(Int64.to_int (Int64.sub addr r.base)) ~size v;
        Ok ()
      | Some _ | None ->
        Error { faccess = Write; faddr = addr; fsize = size;
                fkind = Oob Shadow.Unallocated; fregion = None }
    end

(* Raw (unsanitized) access, as native JITed code would behave:
   - inside a region (even freed): silent read/corruption, no fault;
   - in the null page or outside all regions and redzones: page fault. *)
let raw_load (t : t) ~(addr : int64) ~(size : int) : (int64, fault) result =
  if Word.ult addr null_page_limit then
    Error { faccess = Read; faddr = addr; fsize = size; fkind = Null_deref;
            fregion = None }
  else
    match region_of t addr with
    | Some r ->
      let off = Int64.to_int (Int64.sub addr r.base) in
      if off + size <= r.size then Ok (read_bytes r ~off ~size)
      else Ok 0xAAAA_AAAA_AAAA_AAAAL (* straddles into redzone: garbage *)
    | None ->
      if nearest_region_desc t addr <> None then
        Ok 0xAAAA_AAAA_AAAA_AAAAL (* redzone read: silent garbage *)
      else
        Error { faccess = Read; faddr = addr; fsize = size;
                fkind = Page_fault; fregion = None }

let raw_store (t : t) ~(addr : int64) ~(size : int) (v : int64) :
  (unit, fault) result =
  if Word.ult addr null_page_limit then
    Error { faccess = Write; faddr = addr; fsize = size;
            fkind = Null_deref; fregion = None }
  else
    match region_of t addr with
    | Some r ->
      let off = Int64.to_int (Int64.sub addr r.base) in
      if off + size <= r.size then begin
        write_bytes r ~off ~size v;
        Ok ()
      end
      else Ok () (* silent corruption of the redzone *)
    | None ->
      if nearest_region_desc t addr <> None then Ok ()
      else
        Error { faccess = Write; faddr = addr; fsize = size;
                fkind = Page_fault; fregion = None }
