(* The XDP dispatcher: a trampoline table mapping attach slots to
   programs, updated when programs are attached or detached.

   Injected Bug#7: the real bug was a missing synchronization between
   dispatcher image updates and concurrent executions, so an execution
   could dereference a slot that the update had already cleared.  We
   model the race window deterministically: with the bug present, the
   second and every subsequent *replacement* update leaves one stale
   NULL slot that the next dispatch dereferences. *)

type t = {
  mutable slots : int option array; (* attached program ids *)
  mutable update_count : int;
  mutable stale_null : bool;
}

let n_slots = 4

let create () =
  { slots = Array.make n_slots None; update_count = 0; stale_null = false }

let attached_count (t : t) : int =
  Array.fold_left
    (fun acc s -> match s with Some _ -> acc + 1 | None -> acc)
    0 t.slots

(* Attach [prog_id]; returns false when all slots are busy. *)
let attach ?(bug7 = false) (t : t) ~(prog_id : int) : bool =
  t.update_count <- t.update_count + 1;
  if bug7 && t.update_count >= 2 then t.stale_null <- true;
  let rec place i =
    if i >= n_slots then false
    else
      match t.slots.(i) with
      | None ->
        t.slots.(i) <- Some prog_id;
        true
      | Some _ -> place (i + 1)
  in
  place 0

let detach (t : t) ~(prog_id : int) : unit =
  t.update_count <- t.update_count + 1;
  Array.iteri
    (fun i s -> if s = Some prog_id then t.slots.(i) <- None)
    t.slots

(* Dispatch an incoming event to the program in slot 0.  With the Bug#7
   race window armed, the dispatch dereferences the stale NULL slot. *)
let dispatch (t : t) : (int option, Report.t) result =
  if t.stale_null then begin
    t.stale_null <- false;
    Error
      (Report.make (Report.Kernel_routine "bpf_dispatcher_xdp_func")
         (Report.Mem_fault
            { Kmem.faccess = Kmem.Read; faddr = 0L; fsize = 8;
              fkind = Kmem.Null_deref; fregion = Some "dispatcher_slot" }))
  end
  else Ok (Array.fold_left
             (fun acc s -> match acc with Some _ -> acc | None -> s)
             None t.slots)
