(* Attach points for tracing programs: tracepoints, kprobe targets and
   perf events, each with the execution context a handler runs in and
   the internal event that fires it.

   [Fired_by_lock_acquisition] marks contention_begin (Figure 2):
   whenever the simulated kernel acquires a contended lock, programs
   attached there run.  [Fired_by_helper h] marks kprobe targets placed
   on a helper's implementation (the Bug#4 trace_printk path). *)

open Import

type trigger =
  | Manual                      (* only fired by the test harness *)
  | Fired_by_lock_acquisition
  | Fired_by_helper of string   (* helper name *)

type t = {
  tp_name : string;
  tp_ctx : Lockdep.context;
  tp_prog_types : Prog.prog_type list;
  tp_trigger : trigger;
  tp_since : Version.t;
}

let tp ?(ctx = Lockdep.Normal) ?(trigger = Manual)
    ?(since = Version.V5_15) name prog_types =
  { tp_name = name; tp_ctx = ctx; tp_prog_types = prog_types;
    tp_trigger = trigger; tp_since = since }

let tracing = [ Prog.Kprobe; Prog.Tracepoint; Prog.Raw_tracepoint ]

let catalogue =
  [
    tp "sys_enter" tracing;
    tp "sys_exit" tracing;
    tp "sched_switch" tracing;
    tp "kmem_kmalloc" tracing;
    tp "net_dev_xmit" tracing ~ctx:Lockdep.Softirq;
    tp "timer_expire" tracing ~ctx:Lockdep.Softirq;
    tp "irq_handler_entry" tracing ~ctx:Lockdep.Hardirq;
    tp "contention_begin" tracing ~trigger:Fired_by_lock_acquisition
      ~since:Version.V6_1;
    tp "kprobe:bpf_trace_printk" [ Prog.Kprobe ]
      ~trigger:(Fired_by_helper "trace_printk");
    tp "perf_event_nmi" [ Prog.Perf_event ] ~ctx:Lockdep.Nmi;
    tp "perf_event_cycles" [ Prog.Perf_event ] ~ctx:Lockdep.Hardirq;
  ]

let find (name : string) : t option =
  List.find_opt (fun t -> t.tp_name = name) catalogue

let available ~(version : Version.t) ~(pt : Prog.prog_type) : t list =
  List.filter
    (fun t ->
       Version.at_least version t.tp_since && List.mem pt t.tp_prog_types)
    catalogue

(* Attach points fired when [helper_name] executes. *)
let fired_by_helper (helper_name : string) : t list =
  List.filter
    (fun t ->
       match t.tp_trigger with
       | Fired_by_helper h -> h = helper_name
       | Manual | Fired_by_lock_acquisition -> false)
    catalogue

let fired_by_lock_acquisition () : t list =
  List.filter
    (fun t -> t.tp_trigger = Fired_by_lock_acquisition)
    catalogue
