(* BTF-typed kernel objects programs can obtain pointers to via
   LD_IMM64/BPF_PSEUDO_BTF_ID or helper returns.

   [runtime_null] marks objects whose address is NULL on this (simulated)
   CPU — e.g. a per-cpu variable not allocated here.  The verifier still
   types them PTR_TO_BTF_ID *without* a maybe_null flag, exactly the
   asymmetry that paper Bug#1 (Listing 2) exploits: dereferences of BTF
   pointers are exception-tabled by the kernel and fail gracefully, so
   "no null check required" is safe for *loads from* them, but comparing
   them against genuinely nullable pointers misleads the buggy nullness
   propagation. *)

type desc = {
  btf_id : int;
  btf_name : string;
  btf_size : int;
  runtime_null : bool;
}

let task_struct = { btf_id = 1; btf_name = "task_struct"; btf_size = 256;
                    runtime_null = false }

(* Per-cpu object that happens to be NULL at runtime on this CPU. *)
let percpu_slot = { btf_id = 2; btf_name = "percpu_slot"; btf_size = 64;
                    runtime_null = true }

let cgroup = { btf_id = 3; btf_name = "cgroup"; btf_size = 128;
               runtime_null = false }

let catalogue = [ task_struct; percpu_slot; cgroup ]

let find (id : int) : desc option =
  List.find_opt (fun d -> d.btf_id = id) catalogue

(* Size the *buggy* verifier believes the object has: Bug#2 inflates the
   validated window of task_struct by 64 bytes, letting OOB reads pass. *)
let validated_size ~(bug2 : bool) (d : desc) : int =
  if bug2 && d.btf_name = "task_struct" then d.btf_size + 64 else d.btf_size
