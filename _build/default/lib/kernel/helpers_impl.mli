(** Concrete implementations of helper functions and kfuncs.

    Every anomaly observed while a helper runs — KASAN faults on the
    memory the program handed in, lockdep violations, panics — is
    appended to the kernel's report list with origin [Kernel_routine]:
    the paper's indicator-#2 capture path.  The interpreter aborts the
    execution when new reports appear. *)

(** Per-execution environment a few helpers need. *)
type env = { pkt : Kmem.region option }

val no_env : env

val call :
  Kstate.t -> env -> pc:int -> Bvf_ebpf.Helper.t -> int64 array -> int64
(** Execute a helper with argument registers [| r1..r5 |]; returns the
    value for R0. *)

val call_kfunc :
  Kstate.t -> pc:int -> Bvf_ebpf.Helper.kfunc -> int64 array -> int64
