(* KASAN-style shadow memory for the simulated kernel address space.

   One shadow byte tracks each 8-byte granule of the address space:
   0 means the whole granule is addressable, 1..7 that only the first N
   bytes are, and dedicated poison codes mark redzones, freed memory and
   unallocated space.  The sanitizing functions the paper adds to the
   kernel (the bpf_asan functions) consult exactly this structure, as do the
   KASAN-instrumented kernel routines. *)

let granule = 8

type poison =
  | Addressable of int (* 1..7: partial granule *)
  | Fully_addressable
  | Redzone
  | Freed
  | Unallocated

(* Internal byte encoding, mirroring KASAN's. *)
let code_of_poison = function
  | Fully_addressable -> 0
  | Addressable n ->
    if n < 1 || n > 7 then invalid_arg "Shadow: partial granule size" else n
  | Redzone -> 0xFA
  | Freed -> 0xFB
  | Unallocated -> 0xFE

let poison_of_code = function
  | 0 -> Fully_addressable
  | n when n >= 1 && n <= 7 -> Addressable n
  | 0xFA -> Redzone
  | 0xFB -> Freed
  | _ -> Unallocated

type t = { table : (int64, int) Hashtbl.t }

let create () = { table = Hashtbl.create 4096 }

let granule_of (addr : int64) : int64 = Int64.div addr (Int64.of_int granule)

let code_at (t : t) (addr : int64) : int =
  match Hashtbl.find_opt t.table (granule_of addr) with
  | Some c -> c
  | None -> code_of_poison Unallocated

let poison_at (t : t) (addr : int64) : poison = poison_of_code (code_at t addr)

let set_granule (t : t) (g : int64) (p : poison) : unit =
  match p with
  | Unallocated -> Hashtbl.remove t.table g
  | _ -> Hashtbl.replace t.table g (code_of_poison p)

(* Mark [size] bytes starting at [addr] as addressable.  [addr] must be
   granule-aligned (allocations in the simulated kernel always are); a
   trailing partial granule is encoded with its valid prefix length. *)
let unpoison (t : t) ~(addr : int64) ~(size : int) : unit =
  if Int64.rem addr (Int64.of_int granule) <> 0L then
    invalid_arg "Shadow.unpoison: unaligned base";
  let full = size / granule in
  let rest = size mod granule in
  let g0 = granule_of addr in
  for i = 0 to full - 1 do
    set_granule t (Int64.add g0 (Int64.of_int i)) Fully_addressable
  done;
  if rest > 0 then set_granule t (Int64.add g0 (Int64.of_int full)) (Addressable rest)

(* Poison [size] bytes (rounded up to whole granules) with [p]. *)
let poison (t : t) ~(addr : int64) ~(size : int) (p : poison) : unit =
  if Int64.rem addr (Int64.of_int granule) <> 0L then
    invalid_arg "Shadow.poison: unaligned base";
  let granules = (size + granule - 1) / granule in
  let g0 = granule_of addr in
  for i = 0 to granules - 1 do
    set_granule t (Int64.add g0 (Int64.of_int i)) p
  done

type violation = { bad_addr : int64; bad_poison : poison }

(* KASAN access check: every byte of [addr, addr+size) must be
   addressable.  Returns the first offending address and its poison. *)
let check (t : t) ~(addr : int64) ~(size : int) : (unit, violation) result =
  let rec byte i =
    if i >= size then Ok ()
    else begin
      let a = Int64.add addr (Int64.of_int i) in
      let within = Int64.to_int (Int64.rem a (Int64.of_int granule)) in
      let within = if within < 0 then within + granule else within in
      match poison_of_code (code_at t a) with
      | Fully_addressable ->
        (* whole granule valid: skip to its end *)
        byte (i + (granule - within))
      | Addressable n when within < n -> byte (i + (n - within))
      | Addressable _ | Redzone | Freed | Unallocated ->
        Error { bad_addr = a; bad_poison = poison_of_code (code_at t a) }
    end
  in
  if size <= 0 then Ok () else byte 0

let poison_to_string = function
  | Fully_addressable -> "addressable"
  | Addressable n -> Printf.sprintf "partial(%d)" n
  | Redzone -> "redzone"
  | Freed -> "use-after-free"
  | Unallocated -> "wild-access"
