lib/kernel/report.ml: Kmem Lockdep Option Printf Shadow
