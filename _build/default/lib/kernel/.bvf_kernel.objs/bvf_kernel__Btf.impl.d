lib/kernel/btf.ml: List
