lib/kernel/btf.mli:
