lib/kernel/shadow.mli:
