lib/kernel/map.mli: Bytes Hashtbl Kmem
