lib/kernel/helpers_impl.mli: Bvf_ebpf Kmem Kstate
