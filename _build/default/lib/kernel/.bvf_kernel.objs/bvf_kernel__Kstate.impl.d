lib/kernel/kstate.ml: Btf Bytes Dispatcher Int64 Kconfig Kmem List Lockdep Map Report Tracepoint
