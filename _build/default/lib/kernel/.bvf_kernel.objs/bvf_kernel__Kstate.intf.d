lib/kernel/kstate.mli: Dispatcher Kconfig Kmem Lockdep Map Report
