lib/kernel/import.ml: Bvf_ebpf
