lib/kernel/map.ml: Bytes Hashtbl Import Int64 Kmem List Printf Word
