lib/kernel/shadow.ml: Hashtbl Int64 Printf
