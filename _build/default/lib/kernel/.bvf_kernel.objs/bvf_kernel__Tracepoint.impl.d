lib/kernel/tracepoint.ml: Import List Lockdep Prog Version
