lib/kernel/report.mli: Kmem Lockdep
