lib/kernel/dispatcher.mli: Report
