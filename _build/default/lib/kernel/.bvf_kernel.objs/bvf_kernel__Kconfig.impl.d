lib/kernel/kconfig.ml: Import List Version
