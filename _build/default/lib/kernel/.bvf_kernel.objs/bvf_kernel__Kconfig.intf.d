lib/kernel/kconfig.mli: Bvf_ebpf
