lib/kernel/dispatcher.ml: Array Kmem Report
