lib/kernel/kmem.ml: Bytes Import Int64 List Printf Shadow Word
