lib/kernel/kmem.mli: Bytes Shadow
