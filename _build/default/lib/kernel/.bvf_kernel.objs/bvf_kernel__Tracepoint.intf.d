lib/kernel/tracepoint.mli: Bvf_ebpf Lockdep
