lib/kernel/lockdep.ml: List Printf String
