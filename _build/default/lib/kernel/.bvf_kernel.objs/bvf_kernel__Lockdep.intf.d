lib/kernel/lockdep.mli:
