lib/kernel/helpers_impl.ml: Array Bytes Helper Import Int64 Kconfig Kmem Kstate List Lockdep Map Printf Report Tracepoint Word
