(* A runtime locking-correctness validator in the spirit of Linux lockdep.

   It tracks the stack of held lock classes per execution and flags:
   - recursive acquisition of a lock class already held (the deadlock
     pattern of the paper's Figure 2),
   - release of a lock that is not held (inconsistent lock state),
   - locks still held when an execution ends,
   - acquisition in a context that forbids sleeping/locking (NMI-like).

   These reports are the capture mechanism for indicator #2 deadlock
   bugs (#4, #5, #10 in Table 2). *)

type context = Normal | Softirq | Hardirq | Nmi

let context_to_string = function
  | Normal -> "process"
  | Softirq -> "softirq"
  | Hardirq -> "hardirq"
  | Nmi -> "nmi"

type violation =
  | Recursive_lock of string
  | Unlock_not_held of string
  | Held_at_exit of string list
  | Lock_in_nmi of string

let violation_to_string = function
  | Recursive_lock c ->
    Printf.sprintf "possible recursive locking detected: class %s" c
  | Unlock_not_held c ->
    Printf.sprintf "inconsistent lock state: unlock of unheld %s" c
  | Held_at_exit cs ->
    Printf.sprintf "lock held when returning to user space: %s"
      (String.concat ", " cs)
  | Lock_in_nmi c ->
    Printf.sprintf "lock %s acquired in nmi context" c

type t = {
  mutable held : string list;  (* innermost first *)
  mutable ctx : context;
  mutable violations : violation list;
}

let create () = { held = []; ctx = Normal; violations = [] }

let report (t : t) (v : violation) : unit =
  t.violations <- v :: t.violations

let acquire (t : t) (cls : string) : unit =
  if t.ctx = Nmi then report t (Lock_in_nmi cls);
  if List.mem cls t.held then report t (Recursive_lock cls);
  t.held <- cls :: t.held

let release (t : t) (cls : string) : unit =
  if List.mem cls t.held then begin
    (* remove one instance *)
    let rec drop = function
      | [] -> []
      | c :: rest -> if c = cls then rest else c :: drop rest
    in
    t.held <- drop t.held
  end
  else report t (Unlock_not_held cls)

let holds (t : t) (cls : string) : bool = List.mem cls t.held

(* Called when a program execution finishes: leaked locks are themselves
   violations, and the held set is reset for the next execution. *)
let end_of_execution (t : t) : unit =
  if t.held <> [] then report t (Held_at_exit t.held);
  t.held <- []

let take_violations (t : t) : violation list =
  let v = List.rev t.violations in
  t.violations <- [];
  v
