examples/cve_2022_23222.mli:
