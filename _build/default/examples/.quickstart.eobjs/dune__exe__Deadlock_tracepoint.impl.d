examples/deadlock_tracepoint.ml: Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier List Printf
