examples/quickstart.ml: Array Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier List Printf
