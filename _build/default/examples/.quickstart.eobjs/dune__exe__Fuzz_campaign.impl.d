examples/fuzz_campaign.ml: Array Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Format Hashtbl List Printf Sys
