examples/nullness_bug.mli:
