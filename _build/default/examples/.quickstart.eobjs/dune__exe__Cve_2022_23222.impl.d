examples/cve_2022_23222.ml: Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier List Printf
