examples/deadlock_tracepoint.mli:
