examples/quickstart.mli:
