(* CVE-2022-23222 (paper Listing 1): the v5.15 verifier allowed ALU
   arithmetic on nullable map-value pointers.  The classic exploitation
   pattern offsets the NULL pointer so the subsequent null check passes,
   then walks back with a negative offset — an attacker-controlled
   near-NULL write.

   This example loads the exploit program into:
   - a vulnerable v5.15 kernel: the verifier accepts it and the
     bpf_asan sanitation catches the null-page write at runtime
     (indicator #1, precisely how BVF reported the original CVE class);
   - a fixed kernel: the verifier rejects the pointer arithmetic.

     dune exec examples/cve_2022_23222.exe *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Disasm = Bvf_ebpf.Disasm
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Oracle = Bvf_core.Oracle

let exploit (session : Loader.t) : Insn.t array =
  let fd = Loader.create_map session (Map.hash_def ()) in
  Asm.prog
    [
      [ Asm.st_dw Insn.R10 (-8) 3l;      (* a key that is NOT in the map *)
        Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_reg Insn.R2 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R2 (-8l);
        Asm.call 1;                      (* r0 = NULL at runtime *)
        (* the vulnerable check: ALU on a nullable pointer *)
        Asm.alu64_imm Insn.Add Insn.R0 2048l;
        Asm.jmp_imm Insn.Jne Insn.R0 0l 2;  (* 2048 != 0: check passes *)
        Asm.mov64_imm Insn.R0 0l;
        Asm.exit_;
        Asm.st_dw Insn.R0 (-2048) 7l ];  (* write to address 0 *)
      Asm.ret 0l;
    ]

let attempt (label : string) (config : Kconfig.t) : unit =
  Printf.printf "== %s ==\n" label;
  let session = Loader.create config in
  let prog = exploit session in
  let result =
    Loader.load_and_run session (Verifier.request Prog.Socket_filter prog)
  in
  (match result.Loader.verdict with
   | Error e ->
     Printf.printf "verifier REJECTED the exploit: %s\n"
       e.Bvf_verifier.Venv.vmsg
   | Ok _ ->
     Printf.printf "verifier ACCEPTED the exploit (%s)\n"
       (match result.Loader.status with
        | Some (Exec.Finished v) -> Printf.sprintf "ran to completion, r0=%Ld" v
        | Some Exec.Aborted -> "execution aborted"
        | Some (Exec.Error m) -> m
        | None -> "not executed");
     List.iter
       (fun f -> print_endline ("  " ^ Oracle.finding_to_string f))
       (Oracle.classify config result));
  print_newline ()

let () =
  let session = Loader.create (Kconfig.fixed Version.V5_15) in
  print_endline "exploit program (simplified Listing 1):";
  print_string (Disasm.prog_to_string (exploit session));
  print_newline ();
  attempt "vulnerable v5.15 (CVE present)"
    (Kconfig.make Version.V5_15 ~bugs:[ Kconfig.Cve_2022_23222 ]);
  attempt "patched kernel" (Kconfig.fixed Version.V5_15)
