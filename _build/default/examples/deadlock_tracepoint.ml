(* Paper Figure 2 / Bug #5: a lock-acquiring program attached to the
   contention_begin tracepoint re-enters itself.

   The tracepoint fires whenever a kernel lock acquisition contends.
   A program attached there that itself takes a bpf_spin_lock fires the
   tracepoint again from inside its own critical section; the nested
   activation then tries to take the lock it already holds.  The
   runtime locking validator (lockdep) reports the recursion — the
   indicator-#2 capture of the paper.

     dune exec examples/deadlock_tracepoint.exe *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Disasm = Bvf_ebpf.Disasm
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Helper = Bvf_ebpf.Helper
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Oracle = Bvf_core.Oracle

let figure2 (session : Loader.t) : Insn.t array =
  let fd =
    Loader.create_map session
      (Map.hash_def ~value_size:64 ~has_spin_lock:true ())
  in
  Asm.prog
    [
      (* ensure the element exists so the lookup hits *)
      [ Asm.st_dw Insn.R10 (-8) 1l ];
      List.init 8 (fun i -> Asm.st_dw Insn.R10 (-80 + (8 * i)) 0l);
      [ Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_reg Insn.R2 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R2 (-8l);
        Asm.mov64_reg Insn.R3 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R3 (-80l);
        Asm.mov64_imm Insn.R4 0l;
        Asm.call Helper.map_update_elem.Helper.id;
        (* look up the value carrying the spin lock *)
        Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_reg Insn.R2 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R2 (-8l);
        Asm.call 1;
        Asm.jmp_imm Insn.Jne Insn.R0 0l 2;
        Asm.mov64_imm Insn.R0 0l;
        Asm.exit_;
        Asm.mov64_reg Insn.R6 Insn.R0;
        (* the critical section: this acquisition contends, fires
           contention_begin, and re-runs this very program *)
        Asm.mov64_reg Insn.R1 Insn.R6;
        Asm.call Helper.spin_lock.Helper.id;
        Asm.st_w Insn.R6 8 1l;
        Asm.mov64_reg Insn.R1 Insn.R6;
        Asm.call Helper.spin_unlock.Helper.id ];
      Asm.ret 0l;
    ]

let run (label : string) (config : Kconfig.t) : unit =
  Printf.printf "== %s ==\n" label;
  let session = Loader.create config in
  let prog = figure2 session in
  let req =
    Verifier.request ~attach:(Some "contention_begin") Prog.Tracepoint prog
  in
  let result = Loader.load_and_run session req in
  (match result.Loader.verdict with
   | Error e ->
     Printf.printf "attach/verification refused: %s\n"
       e.Bvf_verifier.Venv.vmsg
   | Ok _ ->
     Printf.printf "program attached to contention_begin and triggered\n";
     List.iter
       (fun f -> print_endline ("  " ^ Oracle.finding_to_string f))
       (Oracle.classify config result));
  print_newline ()

let () =
  let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
  print_endline "Figure 2 program:";
  print_string (Disasm.prog_to_string (figure2 session));
  print_newline ();
  run "kernel missing the contention_begin validation (Bug#5)"
    (Kconfig.make Version.Bpf_next
       ~bugs:[ Kconfig.Bug5_contention_begin_attach ]);
  run "fixed kernel" (Kconfig.fixed Version.Bpf_next)
