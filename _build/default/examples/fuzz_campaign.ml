(* End-to-end fuzzing campaign: the Figure 3 workflow in miniature.

   Runs BVF against a bpf-next kernel carrying the full injected bug
   corpus, prints the campaign statistics, every deduplicated finding
   with its indicator and ground-truth attribution, and the triage
   slice for the first verifier correctness bug found.

     dune exec examples/fuzz_campaign.exe -- [iterations] [seed] *)

module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Campaign = Bvf_core.Campaign
module Oracle = Bvf_core.Oracle
module Triage = Bvf_core.Triage
module Coverage = Bvf_verifier.Coverage

let () =
  let arg i default =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i)
    else default
  in
  let iterations = arg 1 8000 and seed = arg 2 1 in
  let config = Kconfig.default Version.Bpf_next in
  Printf.printf
    "fuzzing %s (%d injected bugs) for %d iterations, seed %d...\n\n"
    (Version.to_string config.Kconfig.version)
    (List.length config.Kconfig.bugs)
    iterations seed;
  let stats = Campaign.run ~seed ~iterations Campaign.bvf_strategy config in
  Format.printf "%a\n" Campaign.pp_summary stats;
  print_endline "findings (deduplicated by fingerprint):";
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) stats.Campaign.st_findings []
    |> List.sort (fun a b ->
        compare a.Campaign.fd_iteration b.Campaign.fd_iteration)
  in
  List.iter
    (fun (f : Campaign.found) ->
       Printf.printf "  iter %5d: %s\n" f.Campaign.fd_iteration
         (Oracle.finding_to_string f.Campaign.fd_finding))
    findings;
  (* triage the first correctness bug: reload its program and slice *)
  print_newline ();
  match
    List.find_opt
      (fun (f : Campaign.found) -> f.Campaign.fd_finding.Oracle.f_correctness)
      findings
  with
  | None -> print_endline "no correctness bug to triage"
  | Some f ->
    print_endline "triage of the first correctness bug:";
    let session = Loader.create config in
    let _ = Campaign.standard_maps session in
    (match
       Verifier.load session.Loader.kst ~cov:(Coverage.create ())
         f.Campaign.fd_request
     with
     | Ok loaded ->
       print_string
         (Triage.slice_to_string
            (Triage.slice_report loaded f.Campaign.fd_finding.Oracle.f_report))
     | Error e ->
       (* map fds differ in the fresh session; fall back to the report *)
       Printf.printf "  (program not reloadable here: %s)\n  %s\n"
         e.Bvf_verifier.Venv.vmsg
         (Bvf_kernel.Report.to_string f.Campaign.fd_finding.Oracle.f_report))
