(* Paper Listing 2 / Bug #1: incorrect nullness propagation.

   Since v6.1 the verifier propagates nullness across register-equality
   comparisons: in the branch where `r0 == r6` holds and r6 is a
   non-null pointer, a nullable r0 is marked non-null.  PTR_TO_BTF_ID
   pointers are typed non-null but may be NULL at runtime — comparing
   against one of those poisons the propagation.  The fix (paper
   Listing 3) filters BTF pointers out.

   The example reproduces the Listing 2 flow, shows the sanitizer catch,
   and prints BVF's triage slice for the finding (section 6.5).

     dune exec examples/nullness_bug.exe *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Disasm = Bvf_ebpf.Disasm
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Btf = Bvf_kernel.Btf
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Oracle = Bvf_core.Oracle
module Triage = Bvf_core.Triage

let listing2 (session : Loader.t) : Insn.t array =
  let fd = Loader.create_map session (Map.hash_def ()) in
  Asm.prog
    [
      [ (* #1: r6 = a PTR_TO_BTF_ID that is NULL on this cpu *)
        Asm.ld_btf_obj Insn.R6 Btf.percpu_slot.Btf.btf_id;
        (* #2-5: r0 = map_lookup(map, &key) -> NULL at runtime *)
        Asm.st_dw Insn.R10 (-8) 0l;
        Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_reg Insn.R2 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R2 (-8l);
        Asm.call 1;
        (* #6: equality comparison against the BTF pointer: the buggy
           verifier marks r0 non-null in the equal branch *)
        Asm.jmp_reg Insn.Jeq Insn.R0 Insn.R6 2;
        Asm.mov64_imm Insn.R0 0l;
        Asm.exit_;
        (* #7: both r0 and r6 are NULL at runtime *)
        Asm.ldx_dw Insn.R1 Insn.R0 0 ];
      Asm.ret 0l;
    ]

let () =
  let buggy =
    Kconfig.make Version.Bpf_next
      ~bugs:[ Kconfig.Bug1_nullness_propagation ]
  in
  let session = Loader.create buggy in
  let prog = listing2 session in
  print_endline "Listing 2 program:";
  print_string (Disasm.prog_to_string prog);
  print_newline ();
  let result =
    Loader.load_and_run session (Verifier.request Prog.Kprobe prog)
  in
  (match result.Loader.verdict, result.Loader.status with
   | Ok loaded, Some Exec.Aborted ->
     print_endline "buggy verifier accepted the program; at runtime:";
     List.iter
       (fun f ->
          print_endline ("  " ^ Oracle.finding_to_string f);
          (* triage: guilty instruction + backward def-use slice *)
          print_string
            (Triage.slice_to_string
               (Triage.slice_report loaded f.Oracle.f_report)))
       (Oracle.classify buggy result)
   | Ok _, status ->
     Printf.printf "unexpected status: %s\n"
       (match status with
        | Some (Exec.Finished v) -> Printf.sprintf "finished %Ld" v
        | Some (Exec.Error m) -> m
        | _ -> "?")
   | Error e, _ -> Printf.printf "unexpected reject: %s\n" e.Bvf_verifier.Venv.vmsg);
  print_newline ();
  (* the fixed verifier filters BTF pointers from the propagation *)
  let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
  let prog = listing2 session in
  match Loader.load_and_run session (Verifier.request Prog.Kprobe prog) with
  | { Loader.verdict = Error e; _ } ->
    Printf.printf "fixed verifier rejects it: %s\n" e.Bvf_verifier.Venv.vmsg
  | _ -> print_endline "unexpected: fixed verifier accepted"
