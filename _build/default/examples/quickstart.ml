(* Quickstart: assemble the paper's Table 1 program (store a key on the
   stack, look it up in a map, null-check, use the value), push it
   through the full pipeline — verify, rewrite, sanitize, execute — and
   show what each stage produced.

     dune exec examples/quickstart.exe *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Disasm = Bvf_ebpf.Disasm
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Verifier = Bvf_verifier.Verifier
module Coverage = Bvf_verifier.Coverage
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec

let () =
  (* a fixed (bug-free) simulated kernel with the sanitizer enabled *)
  let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
  let map_fd = Loader.create_map session (Map.hash_def ()) in

  (* Table 1's workflow, extended with a write through the value *)
  let prog =
    Asm.prog
      [
        [ Asm.st_dw Insn.R10 (-8) 0l;          (* key on the stack *)
          Asm.ld_map_fd Insn.R1 map_fd;        (* r1 = map *)
          Asm.mov64_reg Insn.R2 Insn.R10;      (* r2 = fp - 8 *)
          Asm.alu64_imm Insn.Add Insn.R2 (-8l);
          Asm.call 1;                          (* map_lookup_elem *)
          Asm.jmp_imm Insn.Jne Insn.R0 0l 2;   (* null check *)
          Asm.mov64_imm Insn.R0 0l;
          Asm.exit_;
          Asm.st_dw Insn.R0 8 42l;             (* write to the value *)
          Asm.ldx_dw Insn.R3 Insn.R0 8 ];
        Asm.ret 0l;
      ]
  in

  print_endline "== source program ==";
  print_string (Disasm.prog_to_string prog);

  let req = Verifier.request Prog.Socket_filter prog in
  match
    Verifier.load session.Loader.kst ~cov:(Coverage.create ()) ~log_level:1
      req
  with
  | Error e ->
    Printf.printf "rejected (%s): %s at insn %d\n"
      (Bvf_verifier.Venv.errno_to_string e.Bvf_verifier.Venv.errno)
      e.Bvf_verifier.Venv.vmsg e.Bvf_verifier.Venv.vpc
  | Ok loaded ->
    Printf.printf
      "\n== verifier ==\naccepted: %d instructions, %d processed during \
       analysis\n"
      loaded.Verifier.l_orig_len loaded.Verifier.l_insn_processed;
    print_endline "verifier log (abstract states per instruction):";
    print_string loaded.Verifier.l_log;
    Printf.printf
      "\n== after fixup + bpf_asan sanitation: %d instructions ==\n"
      (Array.length loaded.Verifier.l_insns);
    print_string (Disasm.prog_to_string loaded.Verifier.l_insns);
    print_endline "\n== execution ==";
    Loader.attach session loaded;
    let result = Loader.execute session loaded in
    (match result.Exec.status with
     | Exec.Finished v ->
       Printf.printf "finished normally, R0 = %Ld, %d insns executed\n" v
         result.Exec.insns_executed
     | Exec.Aborted ->
       print_endline "aborted with kernel reports:";
       List.iter
         (fun r -> print_endline ("  " ^ Bvf_kernel.Report.to_string r))
         result.Exec.reports
     | Exec.Error m -> Printf.printf "execution error: %s\n" m)
