(* Tests for the ISA library: word arithmetic, instruction metadata, the
   binary encoder/decoder (including offset translation across the
   two-slot LD_IMM64), the disassembler and the helper catalogue. *)

module Word = Bvf_ebpf.Word
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Encode = Bvf_ebpf.Encode
module Disasm = Bvf_ebpf.Disasm
module Helper = Bvf_ebpf.Helper
module Prog = Bvf_ebpf.Prog
module Version = Bvf_ebpf.Version

let check = Alcotest.check
let i64 = Alcotest.int64

(* -- Word ---------------------------------------------------------------- *)

let test_word_sext () =
  check i64 "sext8 0xff" (-1L) (Word.sext8 0xffL);
  check i64 "sext8 0x7f" 0x7fL (Word.sext8 0x7fL);
  check i64 "sext16 0x8000" (-32768L) (Word.sext16 0x8000L);
  check i64 "sext32 0xffffffff" (-1L) (Word.sext32 0xFFFF_FFFFL);
  check i64 "sext32 positive" 5L (Word.sext32 5L)

let test_word_zext () =
  check i64 "zext8" 0xffL (Word.zext8 (-1L));
  check i64 "zext16" 0xffffL (Word.zext16 (-1L));
  check i64 "to_u32" 0xFFFF_FFFFL (Word.to_u32 (-1L))

let test_word_div_semantics () =
  (* eBPF: x/0 = 0, x%0 = x *)
  check i64 "udiv by zero" 0L (Word.udiv 42L 0L);
  check i64 "umod by zero" 42L (Word.umod 42L 0L);
  check i64 "sdiv by zero" 0L (Word.sdiv (-42L) 0L);
  check i64 "smod by zero" (-42L) (Word.smod (-42L) 0L);
  check i64 "sdiv overflow" Int64.min_int (Word.sdiv Int64.min_int (-1L));
  check i64 "smod overflow" 0L (Word.smod Int64.min_int (-1L))

let test_word_shift_masking () =
  (* shift amounts are masked to the operand width *)
  check i64 "shl64 by 64" 1L (Word.shl64 1L 64L);
  check i64 "shl64 by 65" 2L (Word.shl64 1L 65L);
  check i64 "shl32 by 32" 1L (Word.shl32 1L 32L);
  check i64 "shr32 keeps low" 0x7FFF_FFFFL (Word.shr32 0xFFFF_FFFEL 1L)

let test_word_bswap () =
  check i64 "bswap16" 0x3412L (Word.bswap16 0x1234L);
  check i64 "bswap32" 0x78563412L (Word.bswap32 0x12345678L);
  check i64 "bswap64 round trip" 0x0123456789ABCDEFL
    (Word.bswap64 (Word.bswap64 0x0123456789ABCDEFL))

let test_word_le_bytes () =
  let b = Bytes.make 8 '\000' in
  Word.set_le b 0 8 0x1122334455667788L;
  check i64 "get_le full" 0x1122334455667788L (Word.get_le b 0 8);
  check i64 "get_le low half" 0x55667788L (Word.get_le b 0 4);
  Word.set_le b 0 1 0x00L;
  check i64 "get_le after byte overwrite" 0x55667700L (Word.get_le b 0 4)

let test_word_unsigned_cmp () =
  Alcotest.(check bool) "ult wraps" true (Word.ult 1L (-1L));
  Alcotest.(check bool) "ugt wraps" true (Word.ugt (-1L) 1L);
  check i64 "umax" (-1L) (Word.umax 1L (-1L));
  check i64 "umin" 1L (Word.umin 1L (-1L))

(* -- Insn metadata -------------------------------------------------------- *)

let test_reg_roundtrip () =
  List.iter
    (fun r ->
       match Insn.reg_of_int (Insn.reg_to_int r) with
       | Some r' -> Alcotest.(check bool) "reg roundtrip" true (r = r')
       | None -> Alcotest.fail "reg_of_int failed")
    (Insn.R11 :: Insn.all_regs)

let test_cond_negate_involution () =
  List.iter
    (fun c ->
       if c <> Insn.Jset then
         Alcotest.(check bool) "negate involutive" true
           (Insn.cond_negate (Insn.cond_negate c) = c))
    [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jge; Insn.Jlt; Insn.Jle;
      Insn.Jsgt; Insn.Jsge; Insn.Jslt; Insn.Jsle ]

let test_slots () =
  Alcotest.(check int) "ld_imm64 is two slots" 2
    (Insn.slots (Asm.ld_imm64 Insn.R1 7L));
  Alcotest.(check int) "alu is one slot" 1
    (Insn.slots (Asm.mov64_imm Insn.R1 7l));
  Alcotest.(check int) "prog_slots"
    3
    (Insn.prog_slots [| Asm.ld_imm64 Insn.R1 7L; Asm.exit_ |])

let test_regs_read_written () =
  let ldx = Asm.ldx_dw Insn.R3 Insn.R5 0 in
  Alcotest.(check bool) "ldx reads src" true
    (List.mem Insn.R5 (Insn.regs_read ldx));
  Alcotest.(check bool) "ldx writes dst" true
    (List.mem Insn.R3 (Insn.regs_written ldx));
  let call = Asm.call 1 in
  Alcotest.(check int) "call clobbers R0-R5" 6
    (List.length (Insn.regs_written call))

(* -- Encode/decode -------------------------------------------------------- *)

(* QCheck generator for structurally valid instructions.  Branch offsets
   are patched afterwards by the program generator below. *)
let gen_insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg =
    oneofl [ Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5;
             Insn.R6; Insn.R7; Insn.R8; Insn.R9; Insn.R10 ]
  in
  let size = oneofl [ Insn.B; Insn.H; Insn.W; Insn.DW ] in
  let alu_op =
    oneofl [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Or; Insn.And;
             Insn.Lsh; Insn.Rsh; Insn.Neg; Insn.Mod; Insn.Xor; Insn.Mov;
             Insn.Arsh ]
  in
  let cond =
    oneofl [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jge; Insn.Jlt; Insn.Jle;
             Insn.Jsgt; Insn.Jsge; Insn.Jslt; Insn.Jsle; Insn.Jset ]
  in
  let imm32 = map Int64.to_int32 (int_range (-100000) 100000 >|= Int64.of_int) in
  let off16 = int_range (-50) 50 in
  oneof
    [
      (let* op64 = bool and* op = alu_op and* dst = reg in
       let* src =
         oneof [ map (fun i -> Insn.Imm i) imm32;
                 map (fun r -> Insn.Reg r) reg ]
       in
       (* NEG has no source operand in the wire format *)
       let src = if op = Insn.Neg then Insn.Imm 0l else src in
       return (Insn.Alu { op64; op; dst; src }));
      (let* dst = reg and* v = int_range (-1000000) 1000000 in
       return (Insn.Ld_imm64 (dst, Insn.Const (Int64.of_int v))));
      (let* dst = reg in
       return (Insn.Ld_imm64 (dst, Insn.Map_fd 3)));
      (let* dst = reg and* o = int_range 0 40 in
       return (Insn.Ld_imm64 (dst, Insn.Map_value (4, o))));
      (let* dst = reg in
       return (Insn.Ld_imm64 (dst, Insn.Btf_obj 1)));
      (let* sz = size and* dst = reg and* src = reg and* off = off16 in
       return (Insn.Ldx { sz; dst; src; off }));
      (let* sz = size and* dst = reg and* off = off16 and* imm = imm32 in
       return (Insn.St { sz; dst; off; imm }));
      (let* sz = size and* dst = reg and* src = reg and* off = off16 in
       return (Insn.Stx { sz; dst; src; off }));
      (let* sz = oneofl [ Insn.W; Insn.DW ]
       and* op = oneofl [ Insn.A_add; Insn.A_or; Insn.A_and; Insn.A_xor ]
       and* fetch = bool
       and* dst = reg and* src = reg and* off = off16 in
       return (Insn.Atomic { sz; op; fetch; dst; src; off }));
      (let* op32 = bool and* cond = cond and* dst = reg
       and* src = oneof [ map (fun i -> Insn.Imm i) imm32;
                          map (fun r -> Insn.Reg r) reg ] in
       return (Insn.Jmp { op32; cond; dst; src; off = 0 }));
      (let* swap = bool and* bits = oneofl [ 16; 32; 64 ] and* dst = reg in
       return (Insn.Endian { swap; bits; dst }));
      return (Insn.Call (Insn.Helper 1));
      return (Insn.Call (Insn.Kfunc 1));
      return Insn.Exit;
    ]

(* Generate a program whose every branch offset lands inside it. *)
let gen_prog : Insn.t array QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* len = int_range 1 40 in
  let* insns = array_repeat len gen_insn in
  let* raw_offsets = array_repeat len (int_range 0 (2 * len)) in
  let fixed =
    Array.mapi
      (fun i insn ->
         let clamp off =
           (* valid target in [0, len], expressed relative to i+1 *)
           let target = off mod (len + 1) in
           target - (i + 1)
         in
         match insn with
         | Insn.Jmp j -> Insn.Jmp { j with off = clamp raw_offsets.(i) }
         | Insn.Ja _ -> Insn.Ja (clamp raw_offsets.(i))
         | Insn.Call (Insn.Local _) ->
           Insn.Call (Insn.Local (clamp raw_offsets.(i)))
         | other -> other)
      insns
  in
  return fixed

let encode_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"encode/decode roundtrip" gen_prog
    (fun prog ->
       match Encode.decode (Encode.encode prog) with
       | Ok prog' ->
         Array.length prog = Array.length prog'
         && Array.for_all2 Insn.equal prog prog'
       | Error e ->
         QCheck2.Test.fail_reportf "decode failed at %d: %s"
           e.Encode.pos e.Encode.reason)

let test_encode_ld_imm64_offsets () =
  (* a jump across an LD_IMM64 must survive the slot translation *)
  let prog =
    [| Asm.jmp_imm Insn.Jeq Insn.R1 0l 1 (* over the ld_imm64 *);
       Asm.ld_imm64 Insn.R2 0x1122334455667788L;
       Asm.mov64_imm Insn.R0 0l;
       Asm.exit_ |]
  in
  match Encode.decode (Encode.encode prog) with
  | Ok prog' ->
    Alcotest.(check bool) "same prog" true
      (Array.for_all2 Insn.equal prog prog')
  | Error e -> Alcotest.fail e.Encode.reason

let test_decode_rejects_garbage () =
  let bytes = Bytes.make 8 '\xff' in
  match Encode.decode bytes with
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error _ -> ()

let test_decode_rejects_truncated_ld64 () =
  let prog = [| Asm.ld_imm64 Insn.R1 1L |] in
  let bytes = Encode.encode prog in
  let truncated = Bytes.sub bytes 0 8 in
  match Encode.decode truncated with
  | Ok _ -> Alcotest.fail "truncated ld_imm64 decoded"
  | Error _ -> ()

let test_decode_rejects_branch_into_ld64 () =
  (* craft a raw jump into the second slot of an ld_imm64 *)
  let prog =
    [| Asm.ja 0; Asm.ld_imm64 Insn.R1 1L; Asm.exit_ |]
  in
  let bytes = Encode.encode prog in
  (* retarget the JA (slot 0) to slot offset +1 = ld_imm64's 2nd slot *)
  Bytes.set bytes 2 '\001';
  Bytes.set bytes 3 '\000';
  match Encode.decode bytes with
  | Ok _ -> Alcotest.fail "branch into ld_imm64 middle decoded"
  | Error _ -> ()

(* -- Disasm --------------------------------------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_disasm_smoke () =
  let prog =
    [| Asm.ld_map_fd Insn.R1 3; Asm.call 1; Asm.mov64_imm Insn.R0 0l;
       Asm.exit_ |]
  in
  let text = Disasm.prog_to_string prog in
  Alcotest.(check bool) "mentions helper name" true
    (contains ~needle:"map_lookup_elem" text);
  Alcotest.(check bool) "mentions exit" true (contains ~needle:"exit" text)

let test_histogram () =
  let prog =
    [| Asm.mov64_imm Insn.R0 0l; Asm.jmp_imm Insn.Jeq Insn.R0 0l 0;
       Asm.ldx_dw Insn.R1 Insn.R10 (-8); Asm.exit_ |]
  in
  let h = Disasm.histogram prog in
  Alcotest.(check int) "alu" 1 h.Disasm.alu;
  Alcotest.(check int) "jmp" 1 h.Disasm.jmp;
  Alcotest.(check int) "load" 1 h.Disasm.load;
  Alcotest.(check bool) "ratio" true (Disasm.alu_jmp_ratio h = 0.5)

(* -- Helper catalogue ------------------------------------------------------ *)

let test_helper_lookup () =
  Alcotest.(check bool) "find map_lookup" true
    (Helper.find 1 = Some Helper.map_lookup_elem);
  Alcotest.(check bool) "unknown id" true (Helper.find 9999 = None);
  Alcotest.(check bool) "asan helpers are internal" true
    Helper.asan_load64.Helper.internal

let test_helper_availability () =
  let v515_socket =
    Helper.available ~version:Version.V5_15 ~pt:Prog.Socket_filter
  in
  Alcotest.(check bool) "no trace_printk for socket" true
    (not (List.mem Helper.trace_printk v515_socket));
  Alcotest.(check bool) "no get_current_task_btf on v5.15" true
    (not
       (List.mem Helper.get_current_task_btf
          (Helper.available ~version:Version.V5_15 ~pt:Prog.Kprobe)));
  Alcotest.(check bool) "get_current_task_btf on v6.1" true
    (List.mem Helper.get_current_task_btf
       (Helper.available ~version:Version.V6_1 ~pt:Prog.Kprobe))

let test_kfunc_availability () =
  Alcotest.(check int) "no kfuncs on v5.15" 0
    (List.length (Helper.kfuncs_available ~version:Version.V5_15));
  Alcotest.(check bool) "kfuncs on v6.1" true
    (List.length (Helper.kfuncs_available ~version:Version.V6_1) > 0)

(* -- Prog layouts ---------------------------------------------------------- *)

let test_ctx_layouts () =
  List.iter
    (fun pt ->
       let layout = Prog.ctx_layout pt in
       Alcotest.(check bool) "fields inside ctx" true
         (List.for_all
            (fun f -> f.Prog.foff + f.Prog.fsize <= layout.Prog.ctx_size)
            layout.Prog.fields))
    Prog.all_prog_types

let test_field_at () =
  let layout = Prog.ctx_layout Prog.Xdp in
  Alcotest.(check bool) "data field" true
    (match Prog.field_at layout ~off:0 ~size:4 with
     | Some f -> f.Prog.fkind = Prog.Fk_pkt_data
     | None -> false);
  Alcotest.(check bool) "misaligned miss" true
    (Prog.field_at layout ~off:2 ~size:4 = None);
  Alcotest.(check bool) "wrong size miss" true
    (Prog.field_at layout ~off:0 ~size:8 = None)

let test_return_ranges () =
  Alcotest.(check bool) "socket constrained" true
    (Prog.return_range Prog.Socket_filter = Some (0L, 1L));
  Alcotest.(check bool) "kprobe unconstrained" true
    (Prog.return_range Prog.Kprobe = None)

let test_version_order () =
  Alcotest.(check bool) "5.15 < 6.1" true
    (Version.compare Version.V5_15 Version.V6_1 < 0);
  Alcotest.(check bool) "6.1 < next" true
    (Version.compare Version.V6_1 Version.Bpf_next < 0);
  Alcotest.(check bool) "at_least" true
    (Version.at_least Version.Bpf_next Version.V5_15);
  List.iter
    (fun v ->
       Alcotest.(check bool) "to/of string" true
         (Version.of_string (Version.to_string v) = Some v))
    Version.all

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_ebpf"
    [
      ( "word",
        [ Alcotest.test_case "sext" `Quick test_word_sext;
          Alcotest.test_case "zext" `Quick test_word_zext;
          Alcotest.test_case "div semantics" `Quick test_word_div_semantics;
          Alcotest.test_case "shift masking" `Quick test_word_shift_masking;
          Alcotest.test_case "bswap" `Quick test_word_bswap;
          Alcotest.test_case "le bytes" `Quick test_word_le_bytes;
          Alcotest.test_case "unsigned cmp" `Quick test_word_unsigned_cmp ] );
      ( "insn",
        [ Alcotest.test_case "reg roundtrip" `Quick test_reg_roundtrip;
          Alcotest.test_case "cond negate" `Quick
            test_cond_negate_involution;
          Alcotest.test_case "slots" `Quick test_slots;
          Alcotest.test_case "regs read/written" `Quick
            test_regs_read_written ] );
      ( "encode",
        [ qt encode_roundtrip;
          Alcotest.test_case "jump over ld_imm64" `Quick
            test_encode_ld_imm64_offsets;
          Alcotest.test_case "garbage rejected" `Quick
            test_decode_rejects_garbage;
          Alcotest.test_case "truncated ld64" `Quick
            test_decode_rejects_truncated_ld64;
          Alcotest.test_case "branch into ld64" `Quick
            test_decode_rejects_branch_into_ld64 ] );
      ( "disasm",
        [ Alcotest.test_case "smoke" `Quick test_disasm_smoke;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "helpers",
        [ Alcotest.test_case "lookup" `Quick test_helper_lookup;
          Alcotest.test_case "availability" `Quick test_helper_availability;
          Alcotest.test_case "kfuncs" `Quick test_kfunc_availability ] );
      ( "prog",
        [ Alcotest.test_case "ctx layouts" `Quick test_ctx_layouts;
          Alcotest.test_case "field_at" `Quick test_field_at;
          Alcotest.test_case "return ranges" `Quick test_return_ranges;
          Alcotest.test_case "versions" `Quick test_version_order ] );
    ]
