(* Tests for the simulated kernel substrate: shadow memory, the region
   allocator and its two access disciplines, lockdep, maps, tracepoints,
   the dispatcher and kernel configuration. *)

module Shadow = Bvf_kernel.Shadow
module Kmem = Bvf_kernel.Kmem
module Lockdep = Bvf_kernel.Lockdep
module Map = Bvf_kernel.Map
module Tracepoint = Bvf_kernel.Tracepoint
module Dispatcher = Bvf_kernel.Dispatcher
module Kconfig = Bvf_kernel.Kconfig
module Kstate = Bvf_kernel.Kstate
module Report = Bvf_kernel.Report
module Btf = Bvf_kernel.Btf
module Version = Bvf_ebpf.Version

(* -- Shadow memory -------------------------------------------------------- *)

let test_shadow_basic () =
  let s = Shadow.create () in
  Shadow.unpoison s ~addr:64L ~size:16;
  Alcotest.(check bool) "inside ok" true
    (Shadow.check s ~addr:64L ~size:16 = Ok ());
  Alcotest.(check bool) "partial ok" true
    (Shadow.check s ~addr:72L ~size:8 = Ok ());
  Alcotest.(check bool) "past end bad" true
    (Result.is_error (Shadow.check s ~addr:72L ~size:9));
  Alcotest.(check bool) "before bad" true
    (Result.is_error (Shadow.check s ~addr:56L ~size:8))

let test_shadow_partial_granule () =
  let s = Shadow.create () in
  Shadow.unpoison s ~addr:0L ~size:13;
  Alcotest.(check bool) "13 bytes ok" true
    (Shadow.check s ~addr:0L ~size:13 = Ok ());
  Alcotest.(check bool) "byte 12 ok" true
    (Shadow.check s ~addr:12L ~size:1 = Ok ());
  Alcotest.(check bool) "byte 13 bad" true
    (Result.is_error (Shadow.check s ~addr:13L ~size:1));
  Alcotest.(check bool) "14 bytes bad" true
    (Result.is_error (Shadow.check s ~addr:0L ~size:14))

let test_shadow_poison_codes () =
  let s = Shadow.create () in
  Shadow.unpoison s ~addr:0L ~size:8;
  Shadow.poison s ~addr:0L ~size:8 Shadow.Freed;
  (match Shadow.check s ~addr:0L ~size:8 with
   | Error { Shadow.bad_poison = Shadow.Freed; _ } -> ()
   | _ -> Alcotest.fail "expected freed poison");
  Shadow.poison s ~addr:0L ~size:8 Shadow.Redzone;
  (match Shadow.check s ~addr:4L ~size:1 with
   | Error { Shadow.bad_poison = Shadow.Redzone; _ } -> ()
   | _ -> Alcotest.fail "expected redzone poison")

(* qcheck: unpoisoned range is exactly the valid prefix *)
let shadow_prop =
  QCheck2.Test.make ~count:200 ~name:"shadow validity boundary"
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 80))
    (fun (size, probe) ->
       let s = Shadow.create () in
       Shadow.unpoison s ~addr:0L ~size;
       let ok =
         Shadow.check s ~addr:(Int64.of_int probe) ~size:1 = Ok ()
       in
       ok = (probe < size))

(* -- Kmem ------------------------------------------------------------------ *)

let test_kmem_checked_access () =
  let mem = Kmem.create () in
  let r = Kmem.alloc mem ~kind:(Kmem.Kernel_internal "t") ~size:32 in
  Alcotest.(check bool) "store ok" true
    (Kmem.checked_store mem ~addr:r.Kmem.base ~size:8 0xAAL = Ok ());
  (match Kmem.checked_load mem ~addr:r.Kmem.base ~size:8 with
   | Ok v -> Alcotest.(check int64) "load back" 0xAAL v
   | Error _ -> Alcotest.fail "load failed");
  (* one past the end: redzone *)
  (match
     Kmem.checked_load mem
       ~addr:(Int64.add r.Kmem.base 32L)
       ~size:1
   with
   | Error { Kmem.fkind = Kmem.Oob Shadow.Redzone; _ } -> ()
   | _ -> Alcotest.fail "expected redzone")

let test_kmem_use_after_free () =
  let mem = Kmem.create () in
  let r = Kmem.alloc mem ~kind:(Kmem.Map_elem 1) ~size:16 in
  Kmem.free mem r;
  match Kmem.checked_load mem ~addr:r.Kmem.base ~size:8 with
  | Error { Kmem.fkind = Kmem.Oob Shadow.Freed; _ } -> ()
  | _ -> Alcotest.fail "expected use-after-free"

let test_kmem_null_deref () =
  let mem = Kmem.create () in
  match Kmem.checked_load mem ~addr:8L ~size:8 with
  | Error { Kmem.fkind = Kmem.Null_deref; _ } -> ()
  | _ -> Alcotest.fail "expected null deref"

let test_kmem_raw_is_silent_in_redzone () =
  let mem = Kmem.create () in
  let r = Kmem.alloc mem ~kind:Kmem.Ctx ~size:32 in
  (* raw read one past the end: silently returns garbage, no fault *)
  (match Kmem.raw_load mem ~addr:(Int64.add r.Kmem.base 40L) ~size:8 with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "raw redzone read should be silent");
  (* far away: page fault *)
  match Kmem.raw_load mem ~addr:0x7000_0000_0000L ~size:8 with
  | Error { Kmem.fkind = Kmem.Page_fault; _ } -> ()
  | _ -> Alcotest.fail "expected page fault"

let test_kmem_raw_freed_is_silent () =
  let mem = Kmem.create () in
  let r = Kmem.alloc mem ~kind:(Kmem.Map_elem 1) ~size:16 in
  Kmem.free mem r;
  match Kmem.raw_load mem ~addr:r.Kmem.base ~size:8 with
  | Ok _ -> () (* native code reads freed memory without trapping *)
  | Error _ -> Alcotest.fail "raw UAF should be silent"

let test_kmem_compact () =
  let mem = Kmem.create () in
  let regions =
    List.init 100 (fun i ->
        Kmem.alloc mem ~kind:(Kmem.Map_elem i) ~size:16)
  in
  List.iter (Kmem.free mem) regions;
  Kmem.compact ~keep_freed:10 mem;
  (* recently freed regions keep UAF detection *)
  let recent = List.nth regions 99 in
  (match Kmem.checked_load mem ~addr:recent.Kmem.base ~size:8 with
   | Error { Kmem.fkind = Kmem.Oob Shadow.Freed; _ } -> ()
   | _ -> Alcotest.fail "recent freed region lost poison");
  (* old ones degrade to unallocated *)
  let old = List.nth regions 0 in
  match Kmem.checked_load mem ~addr:old.Kmem.base ~size:8 with
  | Error { Kmem.fkind = Kmem.Oob Shadow.Unallocated; _ } -> ()
  | Error { Kmem.fkind = Kmem.Oob Shadow.Freed; _ } ->
    Alcotest.fail "old region not reclaimed"
  | _ -> Alcotest.fail "old region still accessible"

(* qcheck: checked write/read roundtrip anywhere inside a region *)
let kmem_roundtrip_prop =
  QCheck2.Test.make ~count:200 ~name:"kmem checked roundtrip"
    QCheck2.Gen.(triple (int_range 8 128) (int_range 0 120)
                   (int_range 1 8))
    (fun (size, off, width) ->
       QCheck2.assume (off + width <= size);
       let mem = Kmem.create () in
       let r = Kmem.alloc mem ~kind:Kmem.Ctx ~size in
       let addr = Int64.add r.Kmem.base (Int64.of_int off) in
       let v = Int64.of_int (off * 77) in
       let v = Bvf_ebpf.Word.zext (width * 8) v in
       match Kmem.checked_store mem ~addr ~size:width v with
       | Error _ -> false
       | Ok () -> Kmem.checked_load mem ~addr ~size:width = Ok v)

(* -- Lockdep --------------------------------------------------------------- *)

let test_lockdep_recursion () =
  let l = Lockdep.create () in
  Lockdep.acquire l "a";
  Lockdep.acquire l "b";
  Alcotest.(check int) "no violations yet" 0
    (List.length (Lockdep.take_violations l));
  Lockdep.acquire l "a";
  match Lockdep.take_violations l with
  | [ Lockdep.Recursive_lock "a" ] -> ()
  | _ -> Alcotest.fail "expected recursive lock"

let test_lockdep_unbalanced () =
  let l = Lockdep.create () in
  Lockdep.release l "never-held";
  (match Lockdep.take_violations l with
   | [ Lockdep.Unlock_not_held _ ] -> ()
   | _ -> Alcotest.fail "expected unlock-not-held");
  Lockdep.acquire l "x";
  Lockdep.end_of_execution l;
  match Lockdep.take_violations l with
  | [ Lockdep.Held_at_exit [ "x" ] ] -> ()
  | _ -> Alcotest.fail "expected held-at-exit"

let test_lockdep_nmi () =
  let l = Lockdep.create () in
  l.Lockdep.ctx <- Lockdep.Nmi;
  Lockdep.acquire l "spin";
  match Lockdep.take_violations l with
  | [ Lockdep.Lock_in_nmi "spin" ] -> ()
  | _ -> Alcotest.fail "expected nmi lock violation"

let test_lockdep_balanced_ok () =
  let l = Lockdep.create () in
  Lockdep.acquire l "a";
  Lockdep.release l "a";
  Lockdep.end_of_execution l;
  Alcotest.(check int) "clean" 0 (List.length (Lockdep.take_violations l))

(* -- Maps ------------------------------------------------------------------ *)

let key_of_int n =
  let b = Bytes.make 8 '\000' in
  Bvf_ebpf.Word.set_le b 0 8 (Int64.of_int n);
  b

let test_array_map () =
  let mem = Kmem.create () in
  let m = Map.create mem ~id:1 (Map.array_def ~value_size:16 ~max_entries:4 ()) in
  (* all indices pre-exist *)
  Alcotest.(check bool) "index 0" true (Map.lookup m ~key:(key_of_int 0) <> None);
  Alcotest.(check bool) "index 3" true (Map.lookup m ~key:(key_of_int 3) <> None);
  Alcotest.(check bool) "index 4 out" true (Map.lookup m ~key:(key_of_int 4) = None);
  (* update writes through *)
  let value = Bytes.make 16 'x' in
  Alcotest.(check bool) "update" true
    (Map.update mem m ~key:(key_of_int 1) ~value = Ok ());
  (match Map.lookup m ~key:(key_of_int 1) with
   | Some addr ->
     (match Kmem.checked_load mem ~addr ~size:1 with
      | Ok v -> Alcotest.(check int64) "wrote x" (Int64.of_int (Char.code 'x')) v
      | Error _ -> Alcotest.fail "load")
   | None -> Alcotest.fail "lookup");
  (* deleting from an array map is invalid *)
  match Map.delete mem m ~key:(key_of_int 1) with
  | Error (Map.E_bad_op _), _ -> ()
  | _ -> Alcotest.fail "array delete should fail"

let test_hash_map_lifecycle () =
  let mem = Kmem.create () in
  let m = Map.create mem ~id:2 (Map.hash_def ~max_entries:2 ()) in
  Alcotest.(check bool) "miss" true (Map.lookup m ~key:(key_of_int 7) = None);
  let value = Bytes.make 48 'v' in
  Alcotest.(check bool) "insert" true
    (Map.update mem m ~key:(key_of_int 7) ~value = Ok ());
  Alcotest.(check bool) "hit" true (Map.lookup m ~key:(key_of_int 7) <> None);
  Alcotest.(check bool) "full" true
    (Map.update mem m ~key:(key_of_int 8) ~value = Ok ());
  (match Map.update mem m ~key:(key_of_int 9) ~value with
   | Error Map.E_no_space -> ()
   | _ -> Alcotest.fail "expected E2BIG");
  (* delete defers the free until end of execution *)
  let addr = Option.get (Map.lookup m ~key:(key_of_int 7)) in
  (match Map.delete mem m ~key:(key_of_int 7) with
   | Ok (), _ -> ()
   | _ -> Alcotest.fail "delete");
  Alcotest.(check bool) "gone from map" true
    (Map.lookup m ~key:(key_of_int 7) = None);
  Alcotest.(check bool) "rcu grace: still readable" true
    (Result.is_ok (Kmem.checked_load mem ~addr ~size:8));
  Map.end_of_execution mem m;
  match Kmem.checked_load mem ~addr ~size:8 with
  | Error { Kmem.fkind = Kmem.Oob Shadow.Freed; _ } -> ()
  | _ -> Alcotest.fail "expected UAF after grace period"

let test_hash_map_bug9 () =
  let mem = Kmem.create () in
  let m = Map.create mem ~id:3 (Map.hash_def ()) in
  (* the third delete loses the trylock race; with Bug#9 it reads past
     the bucket table *)
  let fault = ref None in
  for i = 1 to 3 do
    let _, f = Map.delete ~bug9:true mem m ~key:(key_of_int i) in
    if f <> None then fault := f
  done;
  (match !fault with
   | Some { Kmem.fkind = Kmem.Oob Shadow.Redzone; _ } -> ()
   | _ -> Alcotest.fail "expected bucket OOB with bug9");
  (* without the bug, the contended path is fine *)
  let m2 = Map.create mem ~id:4 (Map.hash_def ()) in
  for i = 1 to 6 do
    let _, f = Map.delete ~bug9:false mem m2 ~key:(key_of_int i) in
    Alcotest.(check bool) "no fault without bug" true (f = None)
  done

let test_ringbuf () =
  let mem = Kmem.create () in
  let m = Map.create mem ~id:5 (Map.ringbuf_def ()) in
  (match Map.ringbuf_reserve mem m ~size:32 with
   | Some addr ->
     Alcotest.(check bool) "chunk usable" true
       (Kmem.checked_store mem ~addr ~size:8 1L = Ok ());
     Alcotest.(check bool) "release" true
       (Map.ringbuf_release mem m ~addr);
     Alcotest.(check bool) "double release" false
       (Map.ringbuf_release mem m ~addr)
   | None -> Alcotest.fail "reserve failed");
  Alcotest.(check bool) "oversized reserve fails" true
    (Map.ringbuf_reserve mem m ~size:100_000 = None)

(* qcheck: hash map behaves like an association list *)
let hash_model_prop =
  QCheck2.Test.make ~count:200 ~name:"hash map vs model"
    QCheck2.Gen.(list_size (int_range 0 40)
                   (pair (int_range 0 6) (int_range 0 2)))
    (fun ops ->
       let mem = Kmem.create () in
       let m = Map.create mem ~id:9 (Map.hash_def ~max_entries:100 ()) in
       let model = Hashtbl.create 8 in
       List.for_all
         (fun (k, op) ->
            match op with
            | 0 ->
              let value = Bytes.make 48 (Char.chr (65 + k)) in
              (match Map.update mem m ~key:(key_of_int k) ~value with
               | Ok () ->
                 Hashtbl.replace model k ();
                 true
               | Error _ -> false)
            | 1 ->
              let present = Map.lookup m ~key:(key_of_int k) <> None in
              present = Hashtbl.mem model k
            | _ ->
              let r, _ = Map.delete mem m ~key:(key_of_int k) in
              let expected = Hashtbl.mem model k in
              Hashtbl.remove model k;
              (match r with
               | Ok () -> expected
               | Error Map.E_no_such_key -> not expected
               | Error _ -> false))
         ops)

(* -- Tracepoints / dispatcher / config ------------------------------------ *)

let test_tracepoint_catalogue () =
  Alcotest.(check bool) "contention_begin exists" true
    (Tracepoint.find "contention_begin" <> None);
  Alcotest.(check bool) "gated by version" true
    (not
       (List.exists
          (fun t -> t.Tracepoint.tp_name = "contention_begin")
          (Tracepoint.available ~version:Version.V5_15
             ~pt:Bvf_ebpf.Prog.Tracepoint)));
  Alcotest.(check bool) "fired by lock" true
    (List.length (Tracepoint.fired_by_lock_acquisition ()) = 1);
  Alcotest.(check bool) "fired by helper" true
    (List.length (Tracepoint.fired_by_helper "trace_printk") = 1)

let test_dispatcher_bug7 () =
  let d = Dispatcher.create () in
  Alcotest.(check bool) "attach 1" true (Dispatcher.attach ~bug7:true d ~prog_id:1);
  (match Dispatcher.dispatch d with
   | Ok (Some 1) -> ()
   | _ -> Alcotest.fail "dispatch to prog 1");
  Alcotest.(check bool) "attach 2 arms race" true
    (Dispatcher.attach ~bug7:true d ~prog_id:2);
  (match Dispatcher.dispatch d with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected null deref with bug7");
  (* the window is consumed *)
  match Dispatcher.dispatch d with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "second dispatch should succeed"

let test_dispatcher_fixed () =
  let d = Dispatcher.create () in
  ignore (Dispatcher.attach ~bug7:false d ~prog_id:1);
  ignore (Dispatcher.attach ~bug7:false d ~prog_id:2);
  match Dispatcher.dispatch d with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "fixed dispatcher must not fault"

let test_kconfig_bug_presence () =
  Alcotest.(check bool) "bug1 absent on v5.15" true
    (not (Kconfig.bug_in_version Version.V5_15
            Kconfig.Bug1_nullness_propagation));
  Alcotest.(check bool) "bug1 present on v6.1" true
    (Kconfig.bug_in_version Version.V6_1 Kconfig.Bug1_nullness_propagation);
  Alcotest.(check bool) "cve only on v5.15" true
    (Kconfig.bug_in_version Version.V5_15 Kconfig.Cve_2022_23222
     && not (Kconfig.bug_in_version Version.Bpf_next Kconfig.Cve_2022_23222));
  Alcotest.(check bool) "fixed kernel has no bugs" true
    ((Kconfig.fixed Version.Bpf_next).Kconfig.bugs = []);
  Alcotest.(check int) "bpf-next default carries 11 bugs" 11
    (List.length (Kconfig.default Version.Bpf_next).Kconfig.bugs)

let test_kstate_services () =
  let k = Kstate.create (Kconfig.default Version.Bpf_next) in
  let fd = Kstate.map_create k (Map.hash_def ()) in
  Alcotest.(check bool) "map fd resolves" true (Kstate.map_of_fd k fd <> None);
  (match Kstate.map_addr k fd with
   | Some addr ->
     Alcotest.(check bool) "addr resolves back" true
       (Kstate.map_of_addr k addr <> None)
   | None -> Alcotest.fail "no map addr");
  Alcotest.(check bool) "task addr non-null" true
    (Kstate.current_task_addr k <> 0L);
  Alcotest.(check bool) "percpu btf is null" true
    (Kstate.btf_addr k Btf.percpu_slot.Btf.btf_id = 0L);
  let t1 = Kstate.ktime k and t2 = Kstate.ktime k in
  Alcotest.(check bool) "time advances" true (Int64.compare t2 t1 > 0);
  let r1 = Kstate.prandom_u32 k in
  Alcotest.(check bool) "prandom in range" true
    Bvf_ebpf.Word.(ule r1 0xFFFF_FFFFL)

let test_report_fingerprints () =
  let f1 =
    Report.make Report.Sanitizer
      (Report.Mem_fault
         { Kmem.faccess = Kmem.Read; faddr = 0L; fsize = 8;
           fkind = Kmem.Null_deref; fregion = None })
  in
  let f2 =
    Report.make Report.Sanitizer
      (Report.Mem_fault
         { Kmem.faccess = Kmem.Read; faddr = 4096L; fsize = 4;
           fkind = Kmem.Null_deref; fregion = None })
  in
  Alcotest.(check string) "addresses collapse"
    (Report.fingerprint f1) (Report.fingerprint f2);
  let f3 =
    Report.make (Report.Kernel_routine "x") (Report.Panic "boom")
  in
  Alcotest.(check bool) "mechanism distinguishes" true
    (Report.fingerprint f1 <> Report.fingerprint f3)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_kernel"
    [
      ( "shadow",
        [ Alcotest.test_case "basic" `Quick test_shadow_basic;
          Alcotest.test_case "partial granule" `Quick
            test_shadow_partial_granule;
          Alcotest.test_case "poison codes" `Quick test_shadow_poison_codes;
          qt shadow_prop ] );
      ( "kmem",
        [ Alcotest.test_case "checked access" `Quick
            test_kmem_checked_access;
          Alcotest.test_case "use after free" `Quick
            test_kmem_use_after_free;
          Alcotest.test_case "null deref" `Quick test_kmem_null_deref;
          Alcotest.test_case "raw redzone silent" `Quick
            test_kmem_raw_is_silent_in_redzone;
          Alcotest.test_case "raw freed silent" `Quick
            test_kmem_raw_freed_is_silent;
          Alcotest.test_case "compaction" `Quick test_kmem_compact;
          qt kmem_roundtrip_prop ] );
      ( "lockdep",
        [ Alcotest.test_case "recursion" `Quick test_lockdep_recursion;
          Alcotest.test_case "unbalanced" `Quick test_lockdep_unbalanced;
          Alcotest.test_case "nmi" `Quick test_lockdep_nmi;
          Alcotest.test_case "balanced" `Quick test_lockdep_balanced_ok ] );
      ( "maps",
        [ Alcotest.test_case "array" `Quick test_array_map;
          Alcotest.test_case "hash lifecycle" `Quick
            test_hash_map_lifecycle;
          Alcotest.test_case "bug9 bucket OOB" `Quick test_hash_map_bug9;
          Alcotest.test_case "ringbuf" `Quick test_ringbuf;
          qt hash_model_prop ] );
      ( "kernel",
        [ Alcotest.test_case "tracepoints" `Quick test_tracepoint_catalogue;
          Alcotest.test_case "dispatcher bug7" `Quick test_dispatcher_bug7;
          Alcotest.test_case "dispatcher fixed" `Quick
            test_dispatcher_fixed;
          Alcotest.test_case "kconfig bugs" `Quick
            test_kconfig_bug_presence;
          Alcotest.test_case "kstate services" `Quick test_kstate_services;
          Alcotest.test_case "report fingerprints" `Quick
            test_report_fingerprints ] );
    ]
