(* Abstract-interpretation soundness properties.

   These are the load-bearing invariants of the whole reproduction:

   1. ALU transfer functions: for any abstract scalar states and any
      concrete members, the concrete result of an operation is a member
      of the abstract result (no under-approximation, which would let
      the verifier accept memory-unsafe programs and produce false
      correctness-bug reports).

   2. End-to-end oracle soundness: any structured program the FIXED
      verifier accepts executes without raising a single kernel report.
      This is exactly why a report from an accepted program can be
      blamed on the verifier (the paper's core argument). *)

module Word = Bvf_ebpf.Word
module Insn = Bvf_ebpf.Insn
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Tnum = Bvf_verifier.Tnum
module Regstate = Bvf_verifier.Regstate
module Check_alu = Bvf_verifier.Check_alu
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Campaign = Bvf_core.Campaign

(* -- Membership ------------------------------------------------------------ *)

let member (r : Regstate.t) (x : int64) : bool =
  Regstate.is_scalar r
  && r.Regstate.smin <= x
  && x <= r.Regstate.smax
  && Word.ule r.Regstate.umin x
  && Word.ule x r.Regstate.umax
  && Tnum.contains r.Regstate.var_off x

(* Generate an abstract scalar together with one of its members. *)
let gen_abstract : (Regstate.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let concrete =
    oneof
      [ map Int64.of_int (int_range (-1000) 1000);
        oneofl Rng.interesting_int64;
        map Int64.of_int int ]
  in
  let* x = concrete in
  let* shape = int_range 0 3 in
  match shape with
  | 0 -> return (Regstate.const_scalar x, x)
  | 1 ->
    (* an unsigned interval around x *)
    let* above = map Int64.of_int (int_range 0 4096) in
    let* below = map Int64.of_int (int_range 0 4096) in
    let lo = if Word.ult x below then 0L else Int64.sub x below in
    let hi =
      if Word.ult (Int64.add x above) x then -1L else Int64.add x above
    in
    return (Regstate.scalar_range ~umin:lo ~umax:hi, x)
  | 2 ->
    (* tnum knowledge: some bits of x known *)
    let* mask = map Int64.of_int (int_range 0 0xFFFFFF) in
    let t = { Tnum.value = Int64.logand x (Int64.lognot mask); mask } in
    return (Regstate.scalar_of_tnum t, x)
  | _ -> return (Regstate.unknown_scalar, x)

let alu_ops =
  [ (Insn.Add, Int64.add);
    (Insn.Sub, fun a b -> Int64.sub a b);
    (Insn.Mul, fun a b -> Int64.mul a b);
    (Insn.Div, Word.udiv);
    (Insn.Mod, Word.umod);
    (Insn.Or, Int64.logor);
    (Insn.And, Int64.logand);
    (Insn.Xor, Int64.logxor);
    (Insn.Lsh, Word.shl64);
    (Insn.Rsh, Word.shr64);
    (Insn.Arsh, Word.ashr64);
    (Insn.Mov, fun _ b -> b) ]

let alu64_abstract_sound =
  QCheck2.Test.make ~count:3000 ~name:"alu64 transfer functions sound"
    QCheck2.Gen.(triple (int_range 0 11) gen_abstract gen_abstract)
    (fun (opi, (ra, a), (rb, b)) ->
       let op, concrete = List.nth alu_ops opi in
       let abstract = Check_alu.scalar_op64 op ra rb in
       let result = concrete a b in
       if member abstract result then true
       else
         QCheck2.Test.fail_reportf
           "%s: %Ld op %Ld = %Ld not in %s (from %s, %s)"
           (Insn.alu_op_to_string op) a b result
           (Regstate.to_string abstract)
           (Regstate.to_string ra) (Regstate.to_string rb))

let alu32_abstract_sound =
  QCheck2.Test.make ~count:3000 ~name:"alu32 transfer functions sound"
    QCheck2.Gen.(triple (int_range 0 11) gen_abstract gen_abstract)
    (fun (opi, (ra, a), (rb, b)) ->
       let op, concrete = List.nth alu_ops opi in
       (* concrete 32-bit semantics: low words, zero-extended *)
       let result =
         match op with
         | Insn.Lsh -> Word.shl32 a b
         | Insn.Rsh -> Word.shr32 (Word.to_u32 a) b
         | Insn.Arsh -> Word.ashr32 a b
         | Insn.Div -> Word.to_u32 (Word.udiv (Word.to_u32 a) (Word.to_u32 b))
         | Insn.Mod -> Word.to_u32 (Word.umod (Word.to_u32 a) (Word.to_u32 b))
         | _ -> Word.to_u32 (concrete (Word.to_u32 a) (Word.to_u32 b))
       in
       let abstract = Check_alu.scalar_op32 op ra rb in
       if member abstract result then true
       else
         QCheck2.Test.fail_reportf
           "w%s: %Ld op %Ld = %Ld not in %s"
           (Insn.alu_op_to_string op) a b result
           (Regstate.to_string abstract))

let neg_abstract_sound =
  QCheck2.Test.make ~count:1000 ~name:"neg transfer function sound"
    gen_abstract
    (fun (r, x) ->
       member (Check_alu.scalar_op64 Insn.Neg r r) (Int64.neg x))

(* sync never drops members *)
let sync_preserves_members =
  QCheck2.Test.make ~count:2000 ~name:"bounds sync preserves members"
    gen_abstract
    (fun (r, x) -> member (Regstate.sync r) x)

(* truncate32 contains the zero-extended member *)
let truncate_sound =
  QCheck2.Test.make ~count:2000 ~name:"truncate32 sound"
    gen_abstract
    (fun (r, x) -> member (Regstate.truncate32 r) (Word.to_u32 x))

(* -- End-to-end oracle soundness ------------------------------------------- *)

(* Structured programs accepted by the FIXED verifier never raise a
   report at runtime: the foundation of "any report from an accepted
   program is a verifier bug". *)
let oracle_soundness =
  QCheck2.Test.make ~count:400 ~name:"fixed kernel: accepted => clean run"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       match Loader.load_and_run session req with
       | { Loader.verdict = Error _; _ } -> true (* rejected: vacuous *)
       | { Loader.verdict = Ok _; reports = []; _ } -> true
       | { Loader.verdict = Ok _; reports; _ } ->
         QCheck2.Test.fail_reportf
           "accepted program raised: %s\n%s"
           (String.concat "; "
              (List.map Bvf_kernel.Report.to_string reports))
           (Bvf_ebpf.Disasm.prog_to_string req.Verifier.r_insns))

(* The mirror property for mutants: whatever mutation does, the fixed
   kernel never lets a report-raising program through. *)
let oracle_soundness_mutants =
  QCheck2.Test.make ~count:300 ~name:"fixed kernel: mutants too"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       let req = Bvf_core.Mutate.mutate_request rng ~version:Version.Bpf_next req in
       match Loader.load_and_run session req with
       | { Loader.verdict = Error _; _ } -> true
       | { Loader.verdict = Ok _; reports = []; _ } -> true
       | { Loader.verdict = Ok _; reports; _ } ->
         QCheck2.Test.fail_reportf "mutant raised: %s"
           (String.concat "; "
              (List.map Bvf_kernel.Report.to_string reports)))

(* Decode of an encode of an accepted program is accepted with the same
   verdict: the wire format round-trip composes with verification. *)
let encode_verify_consistent =
  QCheck2.Test.make ~count:200 ~name:"encode/decode preserves verdict"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       let cov = Bvf_verifier.Coverage.create () in
       let direct = Verifier.verify session.Loader.kst ~cov req in
       match Bvf_ebpf.Encode.decode (Bvf_ebpf.Encode.encode req.Verifier.r_insns) with
       | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e.Bvf_ebpf.Encode.reason
       | Ok insns ->
         let roundtrip =
           Verifier.verify session.Loader.kst ~cov
             { req with Verifier.r_insns = insns }
         in
         Result.is_ok direct = Result.is_ok roundtrip)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_soundness"
    [
      ( "abstract domain",
        [ qt alu64_abstract_sound; qt alu32_abstract_sound;
          qt neg_abstract_sound; qt sync_preserves_members;
          qt truncate_sound ] );
      ( "oracle",
        [ qt oracle_soundness; qt oracle_soundness_mutants;
          qt encode_verify_consistent ] );
    ]
