(* Ground-truth tests for the injected bug corpus: for every Table 2 bug
   a hand-written reproducer triggers the corresponding indicator on a
   buggy kernel, and (for the verifier bugs) the FIXED kernel rejects
   the same program — the pair of behaviours the oracle's correctness
   argument rests on. *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Report = Bvf_kernel.Report
module Lockdep = Bvf_kernel.Lockdep
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Oracle = Bvf_core.Oracle

let r0 = Insn.R0
let r1 = Insn.R1
let r2 = Insn.R2
let r3 = Insn.R3
let r4 = Insn.R4
let r6 = Insn.R6
let r10 = Insn.R10

type repro = {
  bug : Kconfig.bug;
  prog_type : Prog.prog_type;
  attach : string option;
  offload : bool;
  build : Loader.t -> Insn.t array;
  expect_indicator : Oracle.indicator option;
  fixed_rejects : bool; (* the fixed kernel must reject the program *)
}

(* Listing 2: nullness propagation against a runtime-NULL BTF pointer. *)
let bug1 =
  {
    bug = Kconfig.Bug1_nullness_propagation;
    prog_type = Prog.Kprobe;
    attach = None;
    offload = false;
    build =
      (fun session ->
         let fd = Loader.create_map session (Map.hash_def ()) in
         Asm.prog
           [ [ Asm.ld_btf_obj r6 2 (* percpu_slot: NULL at runtime *);
               Asm.st_dw r10 (-8) 0l;
               Asm.ld_map_fd r1 fd;
               Asm.mov64_reg r2 r10;
               Asm.alu64_imm Insn.Add r2 (-8l);
               Asm.call 1;
               Asm.jmp_reg Insn.Jeq r0 r6 2;
               Asm.mov64_imm r0 0l;
               Asm.exit_;
               Asm.ldx_dw r1 r0 0 ];
             Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind1;
    fixed_rejects = true;
  }

(* Task-struct window inflated by 64 bytes. *)
let bug2 =
  {
    bug = Kconfig.Bug2_btf_size_check;
    prog_type = Prog.Kprobe;
    attach = None;
    offload = false;
    build =
      (fun _ ->
         Asm.prog
           [ [ Asm.ld_btf_obj r6 1; Asm.ldx_dw r3 r6 288 ]; Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind1;
    fixed_rejects = true;
  }

(* Kfunc-scalar pruning: the unbounded arm is pruned away. *)
let bug3 =
  {
    bug = Kconfig.Bug3_backtrack_precision;
    prog_type = Prog.Kprobe;
    attach = None;
    offload = false;
    build =
      (fun session ->
         let fd =
           Loader.create_map session (Map.array_def ~value_size:48 ())
         in
         Asm.prog
           [ [ Asm.ld_map_value r6 fd 0;
               Asm.mov64_imm r1 100l;
               Asm.call_kfunc Helper.kfunc_obj_id.Helper.kid;
               Asm.mov64_reg Insn.R7 r0;
               (* fall-through arm bounds r7; taken arm does not *)
               Asm.jmp_imm Insn.Jgt Insn.R7 7l 1;
               Asm.ja 0;
               Asm.alu64_reg Insn.Add r6 Insn.R7;
               Asm.ldx_b r3 r6 0 ];
             Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind1;
    fixed_rejects = true;
  }

(* Kprobe on bpf_trace_printk that itself calls trace_printk. *)
let bug4 =
  {
    bug = Kconfig.Bug4_trace_printk_recursion;
    prog_type = Prog.Kprobe;
    attach = Some "kprobe:bpf_trace_printk";
    offload = false;
    build =
      (fun _ ->
         Asm.prog
           [ [ Asm.st_dw r10 (-8) 72l;
               Asm.mov64_reg r1 r10;
               Asm.alu64_imm Insn.Add r1 (-8l);
               Asm.mov64_imm r2 8l;
               Asm.mov64_imm r3 0l;
               Asm.call Helper.trace_printk.Helper.id ];
             Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind2;
    fixed_rejects = true;
  }

(* Figure 2: lock-acquiring program attached to contention_begin. *)
let bug5 =
  {
    bug = Kconfig.Bug5_contention_begin_attach;
    prog_type = Prog.Tracepoint;
    attach = Some "contention_begin";
    offload = false;
    build =
      (fun session ->
         let fd =
           Loader.create_map session
             (Map.hash_def ~value_size:64 ~has_spin_lock:true ())
         in
         Asm.prog
           [ [ Asm.st_dw r10 (-8) 1l ];
             List.init 8 (fun i -> Asm.st_dw r10 (-80 + (8 * i)) 0l);
             [ Asm.ld_map_fd r1 fd;
               Asm.mov64_reg r2 r10;
               Asm.alu64_imm Insn.Add r2 (-8l);
               Asm.mov64_reg r3 r10;
               Asm.alu64_imm Insn.Add r3 (-80l);
               Asm.mov64_imm r4 0l;
               Asm.call Helper.map_update_elem.Helper.id;
               Asm.ld_map_fd r1 fd;
               Asm.mov64_reg r2 r10;
               Asm.alu64_imm Insn.Add r2 (-8l);
               Asm.call 1;
               Asm.jmp_imm Insn.Jne r0 0l 2;
               Asm.mov64_imm r0 0l;
               Asm.exit_;
               Asm.mov64_reg r6 r0;
               Asm.mov64_reg r1 r6;
               Asm.call Helper.spin_lock.Helper.id;
               Asm.mov64_reg r1 r6;
               Asm.call Helper.spin_unlock.Helper.id ];
             Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind2;
    fixed_rejects = true;
  }

(* send_signal from an NMI attach context. *)
let bug6 =
  {
    bug = Kconfig.Bug6_signal_send_nmi;
    prog_type = Prog.Perf_event;
    attach = Some "perf_event_nmi";
    offload = false;
    build =
      (fun _ ->
         Asm.prog
           [ [ Asm.mov64_imm r1 9l;
               Asm.call Helper.send_signal.Helper.id ];
             Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind2;
    fixed_rejects = true;
  }

(* CVE-2022-23222 (Listing 1): ALU on a nullable map-value pointer. *)
let cve =
  {
    bug = Kconfig.Cve_2022_23222;
    prog_type = Prog.Socket_filter;
    attach = None;
    offload = false;
    build =
      (fun session ->
         let fd = Loader.create_map session (Map.hash_def ()) in
         Asm.prog
           [ [ Asm.st_dw r10 (-8) 3l (* absent key: lookup is NULL *);
               Asm.ld_map_fd r1 fd;
               Asm.mov64_reg r2 r10;
               Asm.alu64_imm Insn.Add r2 (-8l);
               Asm.call 1;
               (* the buggy verifier permits arithmetic on the nullable
                  pointer; at runtime r0 = NULL + 2048 dodges the null
                  check, and the negative-offset store then writes to
                  the null page - the CVE's exploitation pattern *)
               Asm.alu64_imm Insn.Add r0 2048l;
               Asm.jmp_imm Insn.Jne r0 0l 2;
               Asm.mov64_imm r0 0l;
               Asm.exit_;
               Asm.st_dw r0 (-2048) 7l ];
             Asm.ret 0l ]);
    expect_indicator = Some Oracle.Ind1;
    fixed_rejects = true;
  }

(* Two XDP attachments arm the dispatcher race. *)
let bug7_test () =
  let config = Kconfig.default Version.Bpf_next in
  let session = Loader.create config in
  let prog = Asm.prog [ Asm.ret 2l ] in
  let run () =
    Loader.load_and_run session (Verifier.request Prog.Xdp prog)
  in
  let _ = run () in
  let second = run () in
  Alcotest.(check bool) "dispatcher null deref" true
    (List.exists
       (fun r ->
          match r.Report.origin with
          | Report.Kernel_routine "bpf_dispatcher_xdp_func" -> true
          | _ -> false)
       second.Loader.reports);
  (* fixed kernel: same sequence is clean *)
  let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
  let run () =
    Loader.load_and_run session (Verifier.request Prog.Xdp prog)
  in
  let _ = run () in
  let second = run () in
  Alcotest.(check int) "fixed has no reports" 0
    (List.length second.Loader.reports)

(* Oversized program trips the kmemdup limit at load time. *)
let bug8_test () =
  let config = Kconfig.default Version.Bpf_next in
  let session = Loader.create config in
  let fd = Loader.create_map session (Map.array_def ()) in
  let big =
    Asm.prog
      [ [ Asm.ld_map_value r6 fd 0 ];
        List.concat
          (List.init 600 (fun i ->
               [ Asm.st_w r6 (4 * (i mod 10)) (Int32.of_int i) ]));
        Asm.ret 1l ]
  in
  let result =
    Loader.load_and_run session (Verifier.request Prog.Socket_filter big)
  in
  Alcotest.(check bool) "kmemdup warning" true
    (List.exists
       (fun r -> Oracle.attribute config r = Some Kconfig.Bug8_kmemdup_limit)
       result.Loader.reports);
  (* fixed kernel (kvmemdup) is silent *)
  let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
  let fd = Loader.create_map session (Map.array_def ()) in
  let big =
    Asm.prog
      [ [ Asm.ld_map_value r6 fd 0 ];
        List.concat
          (List.init 600 (fun i ->
               [ Asm.st_w r6 (4 * (i mod 10)) (Int32.of_int i) ]));
        Asm.ret 1l ]
  in
  let result =
    Loader.load_and_run session (Verifier.request Prog.Socket_filter big)
  in
  Alcotest.(check int) "no warning when fixed" 0
    (List.length result.Loader.reports)

(* Three deletes on a hash map hit the contended bucket path. *)
let bug9_test () =
  let config = Kconfig.default Version.Bpf_next in
  let session = Loader.create config in
  let fd = Loader.create_map session (Map.hash_def ()) in
  let prog =
    Asm.prog
      [ [ Asm.st_dw r10 (-8) 1l ];
        List.concat
          (List.init 3 (fun _ ->
               [ Asm.ld_map_fd r1 fd;
                 Asm.mov64_reg r2 r10;
                 Asm.alu64_imm Insn.Add r2 (-8l);
                 Asm.call Helper.map_delete_elem.Helper.id ]));
        Asm.ret 0l ]
  in
  let result =
    Loader.load_and_run session (Verifier.request Prog.Socket_filter prog)
  in
  Alcotest.(check bool) "bucket OOB attributed" true
    (List.exists
       (fun r ->
          Oracle.attribute config r = Some Kconfig.Bug9_map_bucket_iter)
       result.Loader.reports)

(* ringbuf_output from hard-irq context queues irq_work unsafely. *)
let bug10_test () =
  let config = Kconfig.default Version.Bpf_next in
  let session = Loader.create config in
  let fd = Loader.create_map session (Map.ringbuf_def ()) in
  let prog =
    Asm.prog
      [ [ Asm.st_dw r10 (-16) 5l;
          Asm.st_dw r10 (-8) 5l;
          Asm.ld_map_fd r1 fd;
          Asm.mov64_reg r2 r10;
          Asm.alu64_imm Insn.Add r2 (-16l);
          Asm.mov64_imm r3 16l;
          Asm.mov64_imm r4 0l;
          Asm.call Helper.ringbuf_output.Helper.id ];
        Asm.ret 0l ]
  in
  let result =
    Loader.load_and_run session
      (Verifier.request ~attach:(Some "perf_event_cycles") Prog.Perf_event
         prog)
  in
  Alcotest.(check bool) "irq_work lock bug" true
    (List.exists
       (fun r ->
          Oracle.attribute config r = Some Kconfig.Bug10_irq_work_lock)
       result.Loader.reports)

(* Offloaded XDP program executed on the host. *)
let bug11_test () =
  let config = Kconfig.default Version.Bpf_next in
  let session = Loader.create config in
  let prog = Asm.prog [ Asm.ret 2l ] in
  let result =
    Loader.load_and_run session
      (Verifier.request ~offload:true Prog.Xdp prog)
  in
  Alcotest.(check bool) "host exec warn" true
    (List.exists
       (fun r ->
          Oracle.attribute config r = Some Kconfig.Bug11_xdp_host_exec)
       result.Loader.reports)

(* -- Generic driver for the verifier-bug reproducers ---------------------- *)

let run_repro (r : repro) () =
  (* kernel carrying ONLY the bug under test: attribution is then
     unambiguous *)
  let buggy_config = Kconfig.make Version.Bpf_next ~bugs:[ r.bug ] in
  let session = Loader.create buggy_config in
  let insns = r.build session in
  let req =
    { Verifier.r_prog_type = r.prog_type; r_attach = r.attach;
      r_offload = r.offload; r_insns = insns }
  in
  let result = Loader.load_and_run session req in
  (match result.Loader.verdict with
   | Error e ->
     Alcotest.fail
       (Printf.sprintf "buggy kernel rejected the reproducer: %s"
          e.Bvf_verifier.Venv.vmsg)
   | Ok _ -> ());
  let findings = Oracle.classify buggy_config result in
  Alcotest.(check bool) "indicator fires" true
    (List.exists
       (fun f -> f.Oracle.f_indicator = r.expect_indicator)
       findings);
  Alcotest.(check bool) "attributed to the right bug" true
    (List.exists (fun f -> f.Oracle.f_bug = Some r.bug) findings);
  (* fixed kernel: the same program is rejected *)
  if r.fixed_rejects then begin
    let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
    let insns = r.build session in
    let req = { req with Verifier.r_insns = insns } in
    match Loader.load_and_run session req with
    | { Loader.verdict = Error _; _ } -> ()
    | { Loader.verdict = Ok _; _ } ->
      Alcotest.fail "fixed kernel accepted the reproducer"
  end

let () =
  Alcotest.run "bvf_bugs"
    [
      ( "verifier correctness bugs",
        [ Alcotest.test_case "bug1 nullness propagation" `Quick
            (run_repro bug1);
          Alcotest.test_case "bug2 btf size check" `Quick (run_repro bug2);
          Alcotest.test_case "bug3 kfunc pruning" `Quick (run_repro bug3);
          Alcotest.test_case "bug4 trace_printk recursion" `Quick
            (run_repro bug4);
          Alcotest.test_case "bug5 contention_begin" `Quick
            (run_repro bug5);
          Alcotest.test_case "bug6 send_signal nmi" `Quick
            (run_repro bug6);
          Alcotest.test_case "cve-2022-23222" `Quick (run_repro cve) ] );
      ( "ebpf component bugs",
        [ Alcotest.test_case "bug7 dispatcher race" `Quick bug7_test;
          Alcotest.test_case "bug8 kmemdup limit" `Quick bug8_test;
          Alcotest.test_case "bug9 bucket iteration" `Quick bug9_test;
          Alcotest.test_case "bug10 irq_work" `Quick bug10_test;
          Alcotest.test_case "bug11 xdp host exec" `Quick bug11_test ] );
    ]
