(* Runtime tests: concrete interpreter semantics (checked against the
   eBPF specification with property tests), the load-and-run pipeline,
   sanitizer behaviour at runtime, helper execution and event dispatch. *)

module Word = Bvf_ebpf.Word
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec

let fixed = Kconfig.fixed Version.Bpf_next

(* Run a register-only program (exit appended) and return R0. *)
let run_prog ?(prog_type = Prog.Kprobe) (body : Insn.t list) : int64 =
  let session = Loader.create fixed in
  let insns = Asm.prog [ body; [ Asm.exit_ ] ] in
  match Loader.load_and_run session (Verifier.request prog_type insns) with
  | { Loader.verdict = Error e; _ } ->
    Alcotest.fail
      (Printf.sprintf "unexpected reject: %s" e.Bvf_verifier.Venv.vmsg)
  | { Loader.status = Some (Exec.Finished v); _ } -> v
  | { Loader.status = Some Exec.Aborted; reports; _ } ->
    Alcotest.fail
      (Printf.sprintf "aborted: %s"
         (String.concat "; " (List.map Bvf_kernel.Report.to_string reports)))
  | { Loader.status = Some (Exec.Error m); _ } -> Alcotest.fail m
  | { Loader.status = None; _ } -> Alcotest.fail "not executed"

(* -- ALU semantics --------------------------------------------------------- *)

let alu_ops =
  [ (Insn.Add, Int64.add); (Insn.Sub, Int64.sub); (Insn.Mul, Int64.mul);
    (Insn.Div, Word.udiv); (Insn.Mod, Word.umod);
    (Insn.Or, Int64.logor); (Insn.And, Int64.logand);
    (Insn.Xor, Int64.logxor); (Insn.Lsh, Word.shl64);
    (Insn.Rsh, Word.shr64); (Insn.Arsh, Word.ashr64) ]

let alu64_semantics =
  QCheck2.Test.make ~count:200 ~name:"alu64 matches spec"
    QCheck2.Gen.(triple (int_range 0 10) int64 int64)
    (fun (opi, a, b) ->
       let op, concrete = List.nth alu_ops opi in
       let expected = concrete a b in
       let got =
         run_prog
           [ Asm.ld_imm64 Insn.R1 a;
             Asm.ld_imm64 Insn.R2 b;
             Asm.mov64_reg Insn.R0 Insn.R1;
             Asm.alu64_reg op Insn.R0 Insn.R2 ]
       in
       got = expected)

let alu32_semantics =
  QCheck2.Test.make ~count:200 ~name:"alu32 zero-extends"
    QCheck2.Gen.(triple (int_range 0 10) int64 int64)
    (fun (opi, a, b) ->
       let op, _ = List.nth alu_ops opi in
       let got =
         run_prog
           [ Asm.ld_imm64 Insn.R1 a;
             Asm.ld_imm64 Insn.R2 b;
             Asm.mov64_reg Insn.R0 Insn.R1;
             Asm.alu32_reg op Insn.R0 Insn.R2 ]
       in
       Word.to_u32 got = got)

let test_div_by_zero () =
  Alcotest.(check int64) "div64 by 0" 0L
    (run_prog
       [ Asm.mov64_imm Insn.R0 7l; Asm.mov64_imm Insn.R1 0l;
         Asm.alu64_reg Insn.Div Insn.R0 Insn.R1 ]);
  Alcotest.(check int64) "mod64 by 0 keeps dividend" 7L
    (run_prog
       [ Asm.mov64_imm Insn.R0 7l; Asm.mov64_imm Insn.R1 0l;
         Asm.alu64_reg Insn.Mod Insn.R0 Insn.R1 ]);
  Alcotest.(check int64) "mod32 by 0 zero-extends" 7L
    (run_prog
       [ Asm.ld_imm64 Insn.R0 0xFF_0000_0007L; Asm.mov64_imm Insn.R1 0l;
         Asm.alu32_reg Insn.Mod Insn.R0 Insn.R1 ])

let test_endian () =
  Alcotest.(check int64) "bswap16" 0x3412L
    (run_prog
       [ Asm.ld_imm64 Insn.R0 0x1234L;
         Insn.Endian { swap = true; bits = 16; dst = Insn.R0 } ]);
  Alcotest.(check int64) "le truncates" 0x5678L
    (run_prog
       [ Asm.ld_imm64 Insn.R0 0x12345678L;
         Insn.Endian { swap = false; bits = 16; dst = Insn.R0 } ])

(* -- Memory and control flow ------------------------------------------------ *)

let test_stack_roundtrip () =
  Alcotest.(check int64) "store/load" 99L
    (run_prog
       [ Asm.st_dw Insn.R10 (-8) 99l; Asm.ldx_dw Insn.R0 Insn.R10 (-8) ])

let test_branching () =
  Alcotest.(check int64) "taken" 1L
    (run_prog
       [ Asm.mov64_imm Insn.R1 5l;
         Asm.mov64_imm Insn.R0 0l;
         Asm.jmp_imm Insn.Jgt Insn.R1 3l 1;
         Asm.exit_;
         Asm.mov64_imm Insn.R0 1l ]);
  Alcotest.(check int64) "loop sums 0..4" 10L
    (run_prog
       [ Asm.mov64_imm Insn.R0 0l;
         Asm.mov64_imm Insn.R1 0l;
         Asm.alu64_reg Insn.Add Insn.R0 Insn.R1;
         Asm.alu64_imm Insn.Add Insn.R1 1l;
         Asm.jmp_imm Insn.Jlt Insn.R1 5l (-3) ])

let test_bpf2bpf_call () =
  (* 0: r1=6  1: call sub  2: ja exit  3: r0=r1  4: r0*=2  5: exit *)
  Alcotest.(check int64) "subprogram result" 12L
    (run_prog
       [ Asm.mov64_imm Insn.R1 6l;
         Asm.call_local 1;
         Asm.ja 2;
         Asm.mov64_reg Insn.R0 Insn.R1;
         Asm.alu64_imm Insn.Mul Insn.R0 2l ])

let test_callee_saved_preserved () =
  (* 0: r6=7  1: r1=0  2: call sub(5)  3: r0=r6  4: ja exit
     5: r6=99  6: r0=0  7: exit (shared) *)
  Alcotest.(check int64) "r6 survives the call" 7L
    (run_prog
       [ Asm.mov64_imm Insn.R6 7l;
         Asm.mov64_imm Insn.R1 0l;
         Asm.call_local 2;
         Asm.mov64_reg Insn.R0 Insn.R6;
         Asm.ja 2;
         Asm.mov64_imm Insn.R6 99l;
         Asm.mov64_imm Insn.R0 0l ])

let test_map_roundtrip_runtime () =
  let session = Loader.create fixed in
  let fd = Loader.create_map session (Map.hash_def ()) in
  let insns =
    Asm.prog
      [ [ Asm.st_dw Insn.R10 (-8) 1l; Asm.st_dw Insn.R10 (-56) 77l ];
        List.init 5 (fun i -> Asm.st_dw Insn.R10 (-48 + (8 * i)) 0l);
        [ Asm.ld_map_fd Insn.R1 fd;
          Asm.mov64_reg Insn.R2 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R2 (-8l);
          Asm.mov64_reg Insn.R3 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R3 (-56l);
          Asm.mov64_imm Insn.R4 0l;
          Asm.call Helper.map_update_elem.Helper.id;
          Asm.ld_map_fd Insn.R1 fd;
          Asm.mov64_reg Insn.R2 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R2 (-8l);
          Asm.call Helper.map_lookup_elem.Helper.id;
          Asm.jmp_imm Insn.Jne Insn.R0 0l 2;
          Asm.mov64_imm Insn.R0 0l;
          Asm.exit_;
          Asm.ldx_dw Insn.R0 Insn.R0 0;
          Asm.exit_ ] ]
  in
  match
    Loader.load_and_run session (Verifier.request Prog.Kprobe insns)
  with
  | { Loader.status = Some (Exec.Finished v); _ } ->
    Alcotest.(check int64) "read back" 77L v
  | { Loader.verdict = Error e; _ } ->
    Alcotest.fail e.Bvf_verifier.Venv.vmsg
  | _ -> Alcotest.fail "execution failed"

(* -- Sanitizer runtime behaviour -------------------------------------------- *)

let test_sanitize_preserves_semantics =
  QCheck2.Test.make ~count:120 ~name:"sanitation preserves results"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
       let rng = Bvf_core.Rng.create seed in
       let session_plain =
         Loader.create (Kconfig.with_sanitize fixed false)
       in
       let session_asan =
         Loader.create (Kconfig.with_sanitize fixed true)
       in
       let maps s =
         [ (Loader.create_map s (Map.array_def ()), Map.array_def ());
           (Loader.create_map s (Map.hash_def ()), Map.hash_def ()) ]
       in
       let m1 = maps session_plain in
       let _ = maps session_asan in
       let cfg =
         { Bvf_core.Gen.c_version = Version.Bpf_next;
           Bvf_core.Gen.c_maps = m1 }
       in
       let req = Bvf_core.Gen.generate rng cfg in
       let req =
         { req with Verifier.r_attach = None; r_offload = false }
       in
       match
         ( Loader.load_and_run session_plain req,
           Loader.load_and_run session_asan req )
       with
       | { Loader.verdict = Ok _; status = Some (Exec.Finished a); _ },
         { Loader.verdict = Ok _; status = Some (Exec.Finished b); _ } ->
         a = b
       | _ -> true (* rejected or aborted in both: fine *))

let test_sanitizer_catches_planted_oob () =
  let config =
    Kconfig.make Version.Bpf_next ~bugs:[ Kconfig.Bug2_btf_size_check ]
  in
  let session = Loader.create config in
  let insns =
    Asm.prog
      [ [ Asm.ld_btf_obj Insn.R6 1;
          Asm.ldx_dw Insn.R0 Insn.R6 280 (* past the 256-byte object *) ];
        Asm.ret 0l ]
  in
  match
    Loader.load_and_run session (Verifier.request Prog.Kprobe insns)
  with
  | { Loader.verdict = Ok _; status = Some Exec.Aborted; reports; _ } ->
    Alcotest.(check bool) "sanitizer report" true
      (List.exists
         (fun r ->
            r.Bvf_kernel.Report.origin = Bvf_kernel.Report.Sanitizer)
         reports)
  | { Loader.verdict = Error e; _ } ->
    Alcotest.fail ("rejected: " ^ e.Bvf_verifier.Venv.vmsg)
  | _ -> Alcotest.fail "fault not caught"

let test_sanitize_off_misses_oob () =
  let config =
    Kconfig.with_sanitize
      (Kconfig.make Version.Bpf_next ~bugs:[ Kconfig.Bug2_btf_size_check ])
      false
  in
  let session = Loader.create config in
  let insns =
    Asm.prog
      [ [ Asm.ld_btf_obj Insn.R6 1; Asm.ldx_dw Insn.R0 Insn.R6 280 ];
        Asm.ret 0l ]
  in
  match
    Loader.load_and_run session (Verifier.request Prog.Kprobe insns)
  with
  | { Loader.verdict = Ok _; status = Some (Exec.Finished _); _ } -> ()
  | _ -> Alcotest.fail "expected silent execution without sanitizer"

let test_long_loops_finish () =
  let session = Loader.create fixed in
  let insns =
    Asm.prog
      [ [ Asm.mov64_imm Insn.R6 0l;
          Asm.alu64_imm Insn.Add Insn.R6 1l;
          Asm.jmp_imm Insn.Jlt Insn.R6 1000l (-2) ];
        Asm.ret 0l ]
  in
  match
    Loader.load_and_run session (Verifier.request Prog.Kprobe insns)
  with
  | { Loader.status = Some (Exec.Finished _); insns_executed; _ } ->
    Alcotest.(check bool) "loop iterations executed" true
      (insns_executed > 1500)
  | _ -> Alcotest.fail "bounded loop must finish"

(* -- Attach and events ------------------------------------------------------- *)

let test_attach_trigger () =
  let session = Loader.create fixed in
  let fd = Loader.create_map session (Map.array_def ()) in
  let insns =
    Asm.prog
      [ [ Asm.ld_map_value Insn.R6 fd 0;
          Asm.mov64_imm Insn.R3 1l;
          Asm.atomic Insn.DW Insn.A_add Insn.R6 Insn.R3 0 ];
        Asm.ret 0l ]
  in
  match
    Loader.load_and_run session
      (Verifier.request ~attach:(Some "sys_enter") Prog.Kprobe insns)
  with
  | { Loader.verdict = Ok _; status = Some (Exec.Finished _); _ } ->
    let m =
      Option.get (Bvf_kernel.Kstate.map_of_fd session.Loader.kst fd)
    in
    let key = Bytes.make 4 '\000' in
    let addr = Option.get (Map.lookup m ~key) in
    (match
       Bvf_kernel.Kmem.checked_load
         session.Loader.kst.Bvf_kernel.Kstate.mem ~addr ~size:8
     with
     | Ok v ->
       (* direct run + one attach trigger = 2 increments *)
       Alcotest.(check int64) "ran twice" 2L v
     | Error _ -> Alcotest.fail "counter unreadable")
  | { Loader.verdict = Error e; _ } ->
    Alcotest.fail e.Bvf_verifier.Venv.vmsg
  | _ -> Alcotest.fail "execution failed"

let test_offload_fixed_refuses_host_exec () =
  let session = Loader.create fixed in
  let insns = Asm.prog [ Asm.ret 2l ] in
  match
    Loader.load_and_run session
      (Verifier.request ~offload:true Prog.Xdp insns)
  with
  | { Loader.verdict = Ok _; status = Some (Exec.Error _); reports; _ } ->
    Alcotest.(check int) "no reports" 0 (List.length reports)
  | _ -> Alcotest.fail "fixed kernel must refuse host execution"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_runtime"
    [
      ( "alu",
        [ qt alu64_semantics; qt alu32_semantics;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "endian" `Quick test_endian ] );
      ( "memory+flow",
        [ Alcotest.test_case "stack roundtrip" `Quick test_stack_roundtrip;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "bpf2bpf" `Quick test_bpf2bpf_call;
          Alcotest.test_case "callee saved" `Quick
            test_callee_saved_preserved;
          Alcotest.test_case "map roundtrip" `Quick
            test_map_roundtrip_runtime ] );
      ( "sanitizer",
        [ qt test_sanitize_preserves_semantics;
          Alcotest.test_case "catches planted OOB" `Quick
            test_sanitizer_catches_planted_oob;
          Alcotest.test_case "silent without sanitizer" `Quick
            test_sanitize_off_misses_oob;
          Alcotest.test_case "long loops finish" `Quick
            test_long_loops_finish ] );
      ( "attach",
        [ Alcotest.test_case "attach trigger" `Quick test_attach_trigger;
          Alcotest.test_case "offload refused" `Quick
            test_offload_fixed_refuses_host_exec ] );
    ]
