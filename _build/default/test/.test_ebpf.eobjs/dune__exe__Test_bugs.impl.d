test/test_bugs.ml: Alcotest Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Int32 List Printf
