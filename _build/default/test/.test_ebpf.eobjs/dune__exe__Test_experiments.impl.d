test/test_experiments.ml: Alcotest Bvf_core Bvf_ebpf Bvf_experiments Bvf_kernel Bvf_verifier List Printf
