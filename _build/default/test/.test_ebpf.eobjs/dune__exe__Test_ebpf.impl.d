test/test_ebpf.ml: Alcotest Array Bvf_ebpf Bytes Int64 List QCheck2 QCheck_alcotest String
