test/test_core.ml: Alcotest Array Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Hashtbl Int32 List Printf QCheck2 QCheck_alcotest Result
