test/test_runtime.ml: Alcotest Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Bytes Int64 List Option Printf QCheck2 QCheck_alcotest String
