test/test_soundness.ml: Alcotest Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Int64 List QCheck2 QCheck_alcotest Result String
