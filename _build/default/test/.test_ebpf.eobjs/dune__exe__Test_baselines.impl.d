test/test_baselines.ml: Alcotest Array Bvf_baselines Bvf_core Bvf_ebpf Bvf_kernel Bvf_runtime Bvf_verifier Hashtbl List Printf Result
