test/test_verifier.ml: Alcotest Array Bvf_ebpf Bvf_kernel Bvf_verifier Int64 List Printf QCheck2 QCheck_alcotest String
