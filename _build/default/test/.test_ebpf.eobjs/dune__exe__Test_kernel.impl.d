test/test_kernel.ml: Alcotest Bvf_ebpf Bvf_kernel Bytes Char Hashtbl Int64 List Option QCheck2 QCheck_alcotest Result
