(* Tests for the baseline generators: they must exhibit the acceptance
   and instruction-mix characteristics the paper measured for Syzkaller
   and Buzzer (section 6.3). *)

module Insn = Bvf_ebpf.Insn
module Prog = Bvf_ebpf.Prog
module Disasm = Bvf_ebpf.Disasm
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Verifier = Bvf_verifier.Verifier
module Coverage = Bvf_verifier.Coverage
module Loader = Bvf_runtime.Loader
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Campaign = Bvf_core.Campaign
module Syz_gen = Bvf_baselines.Syz_gen
module Buzzer_gen = Bvf_baselines.Buzzer_gen

let setup () =
  let session = Loader.create (Kconfig.default Version.Bpf_next) in
  let maps = Campaign.standard_maps session in
  (session, { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps })

let acceptance gen n seed =
  let session, cfg = setup () in
  let rng = Rng.create seed in
  let cov = Coverage.create () in
  let ok = ref 0 in
  for _ = 1 to n do
    let req = gen rng cfg in
    if Result.is_ok (Verifier.verify session.Loader.kst ~cov req) then
      incr ok
  done;
  float_of_int !ok /. float_of_int n

let test_syz_acceptance () =
  let rate = acceptance Syz_gen.generate 800 3 in
  Alcotest.(check bool)
    (Printf.sprintf "syzkaller acceptance %.2f in [0.1, 0.45]" rate)
    true
    (rate > 0.1 && rate < 0.45)

let test_buzzer_alujmp_acceptance () =
  let rate =
    acceptance (Buzzer_gen.generate Buzzer_gen.Alu_jmp) 800 3
  in
  Alcotest.(check bool)
    (Printf.sprintf "buzzer alu/jmp acceptance %.2f > 0.9" rate)
    true (rate > 0.9)

let test_buzzer_random_acceptance () =
  let rate =
    acceptance (Buzzer_gen.generate Buzzer_gen.Random_bytes) 800 3
  in
  Alcotest.(check bool)
    (Printf.sprintf "buzzer random acceptance %.3f < 0.05" rate)
    true (rate < 0.05)

let test_buzzer_insn_mix () =
  (* over 88.4%% of Buzzer's instructions are ALU or JMP (paper 6.3) *)
  let _, cfg = setup () in
  let rng = Rng.create 17 in
  let hist = ref Disasm.empty_histogram in
  for _ = 1 to 300 do
    let req = Buzzer_gen.generate Buzzer_gen.Alu_jmp rng cfg in
    hist := Array.fold_left Disasm.classify !hist req.Verifier.r_insns
  done;
  let ratio = Disasm.alu_jmp_ratio !hist in
  Alcotest.(check bool)
    (Printf.sprintf "alu+jmp ratio %.3f >= 0.884" ratio)
    true (ratio >= 0.884)

let test_syz_random_fields_vary () =
  let _, cfg = setup () in
  let rng = Rng.create 31 in
  let lengths = Hashtbl.create 8 in
  for _ = 1 to 100 do
    let req = Syz_gen.generate rng cfg in
    Hashtbl.replace lengths (Array.length req.Verifier.r_insns) ()
  done;
  Alcotest.(check bool) "length diversity" true
    (Hashtbl.length lengths > 5)

let test_baseline_campaigns_no_correctness_bugs () =
  (* the Table 2 headline: neither baseline triggers verifier
     correctness bugs within a comparable budget *)
  let config = Kconfig.default Version.Bpf_next in
  let syz = Campaign.run ~seed:8 ~iterations:1500 Syz_gen.strategy config in
  let buz =
    Campaign.run ~seed:8 ~iterations:1500 (Buzzer_gen.strategy ()) config
  in
  Alcotest.(check int) "syzkaller: none" 0
    (List.length (Campaign.correctness_bugs_found syz));
  Alcotest.(check int) "buzzer: none" 0
    (List.length (Campaign.correctness_bugs_found buz))

let test_buzzer_coverage_saturates () =
  let config = Kconfig.default Version.Bpf_next in
  let short =
    Campaign.run ~seed:5 ~iterations:300 (Buzzer_gen.strategy ()) config
  in
  let long =
    Campaign.run ~seed:5 ~iterations:3000 (Buzzer_gen.strategy ()) config
  in
  (* 10x the budget buys almost nothing: the saturation of Figure 6 *)
  Alcotest.(check bool) "saturated" true
    (long.Campaign.st_edges - short.Campaign.st_edges
     <= short.Campaign.st_edges / 2)

let () =
  Alcotest.run "bvf_baselines"
    [
      ( "acceptance",
        [ Alcotest.test_case "syzkaller window" `Quick test_syz_acceptance;
          Alcotest.test_case "buzzer alu/jmp high" `Quick
            test_buzzer_alujmp_acceptance;
          Alcotest.test_case "buzzer random low" `Quick
            test_buzzer_random_acceptance ] );
      ( "characteristics",
        [ Alcotest.test_case "buzzer insn mix" `Quick test_buzzer_insn_mix;
          Alcotest.test_case "syz diversity" `Quick
            test_syz_random_fields_vary ] );
      ( "campaigns",
        [ Alcotest.test_case "no correctness bugs" `Slow
            test_baseline_campaigns_no_correctness_bugs;
          Alcotest.test_case "buzzer saturates" `Slow
            test_buzzer_coverage_saturates ] );
    ]
