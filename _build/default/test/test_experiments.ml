(* Integration tests over the experiment harnesses: small-budget runs of
   every table/figure generator must exhibit the paper's qualitative
   shapes. *)

module E = Bvf_experiments.Experiments
module Campaign = Bvf_core.Campaign
module Kconfig = Bvf_kernel.Kconfig
module Version = Bvf_ebpf.Version

let test_table2_shape () =
  let t = E.table2 ~iterations:4000 ~seed:2 () in
  Alcotest.(check int) "eleven rows" 11 (List.length t.E.t2_rows);
  let bvf = List.hd t.E.t2_stats in
  Alcotest.(check string) "bvf first" "BVF" bvf.Campaign.st_tool;
  Alcotest.(check bool) "BVF finds correctness bugs" true
    (List.length (Campaign.correctness_bugs_found bvf) >= 2);
  List.iter
    (fun s ->
       if s.Campaign.st_tool <> "BVF" then
         Alcotest.(check int)
           (s.Campaign.st_tool ^ " finds no correctness bugs")
           0
           (List.length (Campaign.correctness_bugs_found s)))
    t.E.t2_stats

let test_coverage_shape () =
  let t = E.coverage ~iterations:1200 ~repetitions:1 ~sample_every:200 () in
  Alcotest.(check int) "nine cells" 9 (List.length t.E.ct_cells);
  List.iter
    (fun version ->
       let bvf = (E.cell t "BVF" version).E.cc_edges in
       let syz = (E.cell t "Syzkaller" version).E.cc_edges in
       let buz = (E.cell t "Buzzer" version).E.cc_edges in
       Alcotest.(check bool)
         (Printf.sprintf "BVF > Syzkaller on %s" (Version.to_string version))
         true (bvf > syz);
       Alcotest.(check bool)
         (Printf.sprintf "Syzkaller > Buzzer on %s"
            (Version.to_string version))
         true (syz > buz);
       Alcotest.(check bool) "BVF several-fold over Buzzer" true
         (bvf > 3.0 *. buz))
    Version.all;
  (* curves are monotnon-decreasing *)
  List.iter
    (fun c ->
       let rec mono = function
         | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
         | _ -> true
       in
       Alcotest.(check bool) "curve monotone" true (mono c.E.cc_curve))
    t.E.ct_cells

let test_acceptance_shape () =
  let a = E.acceptance ~programs:800 () in
  Alcotest.(check bool) "BVF well above Syzkaller" true
    (a.E.ac_bvf > 1.3 *. a.E.ac_syz);
  Alcotest.(check bool) "Buzzer bimodal low" true
    (a.E.ac_buzzer_random < 0.05);
  Alcotest.(check bool) "Buzzer bimodal high" true
    (a.E.ac_buzzer_alujmp > 0.9);
  Alcotest.(check bool) "Buzzer ALU/JMP heavy" true
    (a.E.ac_buzzer_alujmp_ratio >= 0.884);
  Alcotest.(check bool) "EACCES dominates syz rejections" true
    (match a.E.ac_syz_errno with
     | (Bvf_verifier.Venv.EACCES, _) :: _ -> true
     | _ -> false)

let test_overhead_shape () =
  let o = E.overhead ~count:80 ~runs:8 () in
  Alcotest.(check bool) "programs measured" true (o.E.oh_programs >= 60);
  Alcotest.(check bool)
    (Printf.sprintf "slowdown %.2f in (0.1, 3.0)" o.E.oh_exec_slowdown)
    true
    (o.E.oh_exec_slowdown > 0.1 && o.E.oh_exec_slowdown < 3.0);
  Alcotest.(check bool)
    (Printf.sprintf "footprint %.2fx in (1.5, 4.5)" o.E.oh_insn_footprint)
    true
    (o.E.oh_insn_footprint > 1.5 && o.E.oh_insn_footprint < 4.5)

let test_ablation_shape () =
  let rows = E.ablation ~iterations:1500 () in
  Alcotest.(check int) "four variants" 4 (List.length rows);
  let find name =
    List.find (fun r -> r.E.ab_name = name) rows
  in
  let full = find "BVF (full)" in
  let nostructure = find "no structured generation" in
  Alcotest.(check bool) "structure drives coverage" true
    (full.E.ab_edges > nostructure.E.ab_edges);
  Alcotest.(check bool) "structure drives acceptance" true
    (full.E.ab_accept > nostructure.E.ab_accept);
  Alcotest.(check bool) "structure drives correctness bugs" true
    (full.E.ab_correctness_bugs > nostructure.E.ab_correctness_bugs)

let () =
  Alcotest.run "bvf_experiments"
    [
      ( "shapes",
        [ Alcotest.test_case "table2" `Slow test_table2_shape;
          Alcotest.test_case "coverage" `Slow test_coverage_shape;
          Alcotest.test_case "acceptance" `Slow test_acceptance_shape;
          Alcotest.test_case "overhead" `Slow test_overhead_shape;
          Alcotest.test_case "ablation" `Slow test_ablation_shape ] );
    ]
